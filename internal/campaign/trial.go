package campaign

import (
	"fmt"
	"strings"
	"time"

	"vampos/internal/aging"
	"vampos/internal/ckpt"
	"vampos/internal/core"
	"vampos/internal/faults"
	"vampos/internal/mem"
	"vampos/internal/trace"
	"vampos/internal/unikernel"
)

// Trial timing. Detection thresholds are tightened well below the
// paper's 1 s default so a hundred-cell campaign stays fast; the bounds
// the oracles assert scale off the same constants. All durations are
// virtual time, so they are deterministic across hosts and -parallel
// settings.
const (
	trialHangThreshold  = 300 * time.Millisecond
	trialWatchdogPeriod = 20 * time.Millisecond
	trialMaxVirtual     = 5 * time.Minute
	trialDeadline       = 60 * time.Second // per-trial workload deadline
	trialSettle         = 2 * time.Second  // recovery settling before verify
	leakBytes           = 128 << 10
	leakBlock           = 4 << 10

	// Aging-trial shape: the gradual leak drips agingLeakStep bytes every
	// agingLeakPause of virtual time (an ~8 MB/s slope, well above the
	// policy threshold below), and the trial waits up to agingWait for the
	// adaptive controller to react before judging.
	agingLeakStep  = 8 << 10
	agingLeakTotal = 128 << 10
	agingLeakPause = time.Millisecond
	agingWait      = 2 * time.Second
)

// DefaultAgingPolicy is the adaptive-rejuvenation policy aging cells
// arm when Options.Aging is unset: leak-slope only, with every other
// sensor disabled so the trial observes a deterministic cause, and a
// threshold far above the target workloads' own allocation churn but
// far below the injected drip.
func DefaultAgingPolicy() aging.Policy {
	return aging.Policy{
		SamplePeriod: 5 * time.Millisecond,
		Window:       4,
		Thresholds: aging.Thresholds{
			LeakSlope:     1 << 20, // bytes per virtual second
			Fragmentation: -1,
			LogBacklog:    -1,
			LatencyDrift:  -1,
			ErrorRate:     -1,
		},
		Cooldown: 50 * time.Millisecond,
	}
}

// trial is the mutable state one cell's execution threads share.
type trial struct {
	cell    Cell
	after   int // seed-derived injection ordinal (fault fires on the after-th invocation)
	profile unikernel.Config
	ckpt    ckpt.Policy // incremental-checkpoint policy applied to the instance

	errs      int // client/syscall errors during the tolerant run phase
	corrupt   int // byte-correctness violations (never tolerated)
	deadlineV time.Duration
	finished  bool
	verifyErr error

	// leak-fault observations
	leakBefore, leakAfter core.HeapStats
	leakRebootErr         error
	leakDone              bool

	// wild-write observations
	wildEFault      bool
	wildIntact      bool
	wildFaultsDelta uint64

	// aging-fault observations
	agingPolicy             aging.Policy // the effective adaptive policy
	agingBefore, agingAfter core.HeapStats
	agingStats              aging.Stats
	agingStatsOK            bool
	agingDone               bool

	// defense-fault observations (tamper, badframe, xdomtouch)
	defInjected    bool   // the attack was actually delivered
	defEFaults     int    // EFAULT replies observed on xdomtouch strikes
	defIntact      bool   // xdomtouch: victim witness unharmed afterwards
	defFaultsDelta uint64 // xdomtouch: protection faults raised by strikes
	defRerandErr   error  // error from the fingerprint-comparison reboot
}

func (t *trial) pastDeadline(s *unikernel.Sys) bool {
	return t.deadlineV > 0 && s.Elapsed() > t.deadlineV
}

// trialSeed hashes the campaign seed and the cell ID into the per-trial
// seed (FNV-1a), so any cell reproduces in isolation from -seed alone.
func trialSeed(campaignSeed int64, id string) uint64 {
	h := uint64(14695981039346656037)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for _, b := range []byte(id) {
		mix(b)
	}
	s := uint64(campaignSeed)
	for i := 0; i < 8; i++ {
		mix(byte(s >> (8 * i)))
	}
	return h
}

// runTrial executes one cell on a fresh, fully isolated instance and
// judges it. Safe to call from any goroutine: instances share no state.
func runTrial(cell Cell, opts Options) (res CellResult) {
	if cell.Workload == ClusterWorkload {
		return runClusterTrial(cell, opts)
	}
	if cell.Fault == FaultSessionCrash {
		return runSessionTrial(cell, opts)
	}
	if cell.Fault.defenseFault() {
		return runDefenseTrial(cell, opts)
	}
	res = CellResult{Cell: cell, TrialID: cell.ID()}
	defer func() {
		if r := recover(); r != nil {
			res.Verdict = VerdictFail
			res.Detail = fmt.Sprintf("trial panicked: %v", r)
			if cell.Expected {
				res.Verdict = VerdictExpected
			}
		}
	}()
	seed := trialSeed(opts.Seed, cell.ID())
	t := &trial{cell: cell, after: 1 + int(seed%3), ckpt: opts.Ckpt}
	res.After = t.after

	cc, err := coreConfigFor(cell.Config)
	if err != nil {
		return failResult(res, err)
	}
	cc.HangThreshold = trialHangThreshold
	cc.Shards = opts.Shards
	cc.WatchdogPeriod = trialWatchdogPeriod
	cc.MaxVirtualTime = trialMaxVirtual
	cc.Ckpt = opts.Ckpt
	cc.ReplayRetCheck = opts.ReplayRetCheck
	if cell.Fault == FaultAging {
		// Boot starts the adaptive controller; the trial only arms the
		// leak and observes — any reboot must come from the sensors.
		t.agingPolicy = DefaultAgingPolicy()
		if opts.Aging.Enabled() {
			t.agingPolicy = opts.Aging
		}
		cc.Aging = t.agingPolicy
		cc.AgingTargets = []string{cell.Component}
	}
	d, err := driverFor(cell.Workload)
	if err != nil {
		return failResult(res, err)
	}
	t.profile = d.profile(unikernel.Config{Core: cc})
	inst, err := unikernel.New(t.profile)
	if err != nil {
		return failResult(res, err)
	}
	if cell.Fault == FaultWildWrite {
		if err := inst.Runtime().Register(faults.NewSaboteur()); err != nil {
			return failResult(res, err)
		}
	}
	if err := d.setupHost(inst); err != nil {
		return failResult(res, err)
	}
	rec := inst.NewTracer("campaign/"+cell.ID(), trace.WithCapacity(1<<14))

	var phaseErr error
	v0 := time.Duration(0)
	runErr := inst.Run(func(s *unikernel.Sys) {
		defer s.Stop()
		v0 = s.Elapsed()
		t.deadlineV = s.Elapsed() + trialDeadline
		if phaseErr = s.StartApp(d.app()); phaseErr != nil {
			phaseErr = fmt.Errorf("app start: %w", phaseErr)
			return
		}
		if phaseErr = d.warm(s, t); phaseErr != nil {
			phaseErr = fmt.Errorf("warm phase: %w", phaseErr)
			return
		}
		if phaseErr = t.inject(s, inst); phaseErr != nil {
			phaseErr = fmt.Errorf("injection: %w", phaseErr)
			return
		}
		d.run(s, t)
		s.Sleep(trialSettle)
		t.verifyErr = d.verify(s, t)
		t.finished = true
	})
	res.Virtual = inst.Runtime().Clock().Elapsed() - v0
	if runErr != nil && phaseErr == nil {
		phaseErr = runErr
	}
	events := rec.Snapshot()
	res.Reboots = len(inst.Runtime().Reboots())
	res.ClientErrs = t.errs
	res.Verdict, res.Oracles, res.Detail = judge(t, inst, events, phaseErr)
	res.recorder = rec
	return res
}

// inject applies the cell's fault. Armed kinds (crash, hang, errno) are
// deferred to the after-th invocation of the fault site; leak and
// wild-write execute immediately from the controller.
func (t *trial) inject(s *unikernel.Sys, inst *unikernel.Instance) error {
	rt := inst.Runtime()
	cell := t.cell
	fn := cell.Function
	if fn == "" || fn == core.AnyFunction {
		fn = core.AnyFunction
	}
	switch cell.Fault {
	case FaultCrash:
		return rt.ArmFaultSpec(cell.Component, fn, core.FaultSpec{Kind: core.FaultCrash, After: t.after})
	case FaultHang:
		return rt.ArmFaultSpec(cell.Component, fn, core.FaultSpec{Kind: core.FaultHang, After: t.after})
	case FaultErrno:
		return rt.ArmFaultSpec(cell.Component, fn, core.FaultSpec{Kind: core.FaultErrno, After: t.after, Errno: core.EIO})
	case FaultLeak:
		inj := faults.NewInjector(rt)
		before, err := inj.HeapStats(cell.Component)
		if err != nil {
			return err
		}
		if _, err := inj.LeakBytes(cell.Component, leakBytes, leakBlock); err != nil {
			return err
		}
		t.leakBefore, _ = inj.HeapStats(cell.Component)
		if t.leakBefore.AllocatedBytes <= before.AllocatedBytes {
			return fmt.Errorf("leak did not grow %s's heap", cell.Component)
		}
		// Rejuvenate: the proactive component reboot that clears aging
		// (§VII-D). VIRTIO refuses it — the expected-unrecoverable path.
		t.leakRebootErr = s.Reboot(cell.Component)
		t.leakAfter, _ = inj.HeapStats(cell.Component)
		t.leakDone = true
		return nil
	case FaultAging:
		inj := faults.NewInjector(rt)
		before, err := inj.HeapStats(cell.Component)
		if err != nil {
			return err
		}
		// Drip the leak so the controller's sample window observes a
		// slope, rather than a step it could only see once. The
		// controller may fire mid-drip (the whole point), so the "before"
		// observation is the peak allocation seen during the drip, not
		// the end state.
		t.agingBefore = before
		for leaked := int64(0); leaked < agingLeakTotal; leaked += agingLeakStep {
			if _, err := inj.LeakBytes(cell.Component, agingLeakStep, agingLeakStep); err != nil {
				return err
			}
			if hs, err := inj.HeapStats(cell.Component); err == nil &&
				hs.AllocatedBytes > t.agingBefore.AllocatedBytes {
				t.agingBefore = hs
			}
			s.Sleep(agingLeakPause)
		}
		if t.agingBefore.AllocatedBytes <= before.AllocatedBytes {
			return fmt.Errorf("aging leak did not grow %s's heap", cell.Component)
		}
		// Wait (bounded, virtual time) for the sensor-driven controller
		// to act: a successful rejuvenation, or — for unrebootable
		// targets — a refused one that armed backoff.
		deadline := s.Elapsed() + agingWait
		for s.Elapsed() < deadline {
			st, ok := rt.AgingStats(cell.Component)
			if ok && (st.Rejuvenations > 0 || st.Failures > 0) {
				break
			}
			s.Sleep(t.agingPolicy.WithDefaults().SamplePeriod)
		}
		t.agingStats, t.agingStatsOK = rt.AgingStats(cell.Component)
		t.agingAfter, _ = inj.HeapStats(cell.Component)
		t.agingDone = true
		return nil
	case FaultWildWrite:
		heap, ok := rt.ComponentHeap(cell.Component)
		if !ok {
			return fmt.Errorf("no heap for victim %q", cell.Component)
		}
		victimAddr, err := heap.Alloc(64)
		if err != nil {
			return err
		}
		memObj := rt.Memory()
		witness := []byte("precious")
		if err := memObj.HostWrite(mem.Addr(victimAddr), witness); err != nil {
			return err
		}
		faults0 := memObj.Faults()
		_, werr := s.Ctx().Call("saboteur", "wild_write", victimAddr, 0xFF)
		t.wildEFault = werr != nil && strings.Contains(werr.Error(), "EFAULT")
		got := make([]byte, len(witness))
		if err := memObj.HostRead(mem.Addr(victimAddr), got); err != nil {
			return err
		}
		t.wildIntact = string(got) == string(witness)
		t.wildFaultsDelta = memObj.Faults() - faults0
		return nil
	default:
		return fmt.Errorf("campaign: unknown fault %q", cell.Fault)
	}
}

func failResult(res CellResult, err error) CellResult {
	res.Verdict = VerdictFail
	if res.Expected {
		res.Verdict = VerdictExpected
	}
	res.Detail = err.Error()
	return res
}
