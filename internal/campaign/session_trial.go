package campaign

import (
	"fmt"
	"strings"
	"time"

	"vampos/internal/apps/redis"
	"vampos/internal/bench"
	"vampos/internal/core"
	"vampos/internal/sched"
	"vampos/internal/trace"
	"vampos/internal/unikernel"
)

// Session trial shape: several persistent client connections so that the
// injected crash strikes one connection's session while the others keep
// serving — the experiment behind the untouched-sessions oracle.
const (
	sessionClients = 3
	sessionWarmOps = 5  // SETs per client before the fault is armed
	sessionRunOps  = 10 // SETs per client while the fault fires

	// sessionLatencySlack bounds what an untouched session may lose on
	// top of its warm-phase worst case and the recovery itself: one
	// dispatch through the recovering group's mailbox, with margin.
	sessionLatencySlack = 10 * time.Millisecond
)

// sessClient is one persistent redis connection and its observations.
type sessClient struct {
	cl      *bench.RedisClient
	keys    []kvPair
	errs    int
	warmMax time.Duration // worst SET latency before the fault was armed
	runMax  time.Duration // worst SET latency while recovery could happen
}

// runSessionTrial executes one sessioncrash cell: boot redis under the
// Microreboot configuration, open several persistent client connections,
// crash the armed per-session fault site mid-workload, and judge that
// recovery stayed at the session rung (or escalated honestly), that
// every untouched session observed zero errors and no latency spike
// beyond one dispatch, and that the trace tells the same story.
func runSessionTrial(cell Cell, opts Options) (res CellResult) {
	res = CellResult{Cell: cell, TrialID: cell.ID()}
	defer func() {
		if r := recover(); r != nil {
			res.Verdict = VerdictFail
			res.Detail = fmt.Sprintf("trial panicked: %v", r)
		}
	}()
	seed := trialSeed(opts.Seed, cell.ID())
	after := 1 + int(seed%3)
	res.After = after

	cc, err := coreConfigFor(cell.Config)
	if err != nil {
		return failResult(res, err)
	}
	cc.HangThreshold = trialHangThreshold
	cc.Shards = opts.Shards
	cc.WatchdogPeriod = trialWatchdogPeriod
	cc.MaxVirtualTime = trialMaxVirtual
	cc.Ckpt = opts.Ckpt
	cc.ReplayRetCheck = opts.ReplayRetCheck
	cc.Microreboot = true // the configuration under test: rung 1 enabled

	kv := redis.New()
	profile := kv.Profile(unikernel.Config{Core: cc})
	inst, err := unikernel.New(profile)
	if err != nil {
		return failResult(res, err)
	}
	rec := inst.NewTracer("campaign/"+cell.ID(), trace.WithCapacity(1<<14))

	clients := make([]*sessClient, sessionClients)
	for i := range clients {
		clients[i] = &sessClient{}
	}
	var (
		phaseErr  error
		verifyErr error
		v0        time.Duration
		deadlineV time.Duration
	)
	runErr := inst.Run(func(s *unikernel.Sys) {
		defer s.Stop()
		v0 = s.Elapsed()
		deadlineV = v0 + trialDeadline
		if phaseErr = s.StartApp(kv); phaseErr != nil {
			phaseErr = fmt.Errorf("app start: %w", phaseErr)
			return
		}
		// All clients live on one host thread: bench clients are bound to
		// the thread that dialled them, and one thread keeps the trial as
		// deterministic as a single-client one. The controller advances
		// the phase variable; the client thread acknowledges.
		phase, ack := 0, 0
		var clientErr error
		s.GoHost("campaign/sessions", func(th *sched.Thread) {
			defer func() { ack = 3 }()
			for i, c := range clients {
				peer := s.NewPeer()
				cl, err := bench.DialRedis(s, th, peer, redis.DefaultPort, 2*time.Second)
				if err != nil {
					clientErr = fmt.Errorf("dial client %d: %w", i, err)
					return
				}
				c.cl = cl
				defer cl.Close()
			}
			set := func(c *sessClient, ci, i int, max *time.Duration) {
				k, v := fmt.Sprintf("s%d-%03d", ci, i), fmt.Sprintf("w%d-%03d", ci, i)
				start := s.Elapsed()
				err := c.cl.Set(k, v, 2*time.Second)
				if lat := s.Elapsed() - start; lat > *max {
					*max = lat
				}
				if err != nil {
					c.errs++
					return
				}
				c.keys = append(c.keys, kvPair{k, v})
			}
			// Warm: establish every session and its baseline latency.
			for i := 0; i < sessionWarmOps; i++ {
				for ci, c := range clients {
					set(c, ci, i, &c.warmMax)
				}
			}
			ack = 1
			for phase < 2 && s.Elapsed() < deadlineV {
				th.Sleep(time.Millisecond)
			}
			// Run: round-robin SETs while the armed fault fires and rung-1
			// recovery happens underneath.
			for i := sessionWarmOps; i < sessionWarmOps+sessionRunOps; i++ {
				for ci, c := range clients {
					set(c, ci, i, &c.runMax)
				}
			}
			ack = 2
			for phase < 3 && s.Elapsed() < deadlineV {
				th.Sleep(time.Millisecond)
			}
			// Verify on the surviving sessions: every acknowledged SET is
			// readable through the same connection that wrote it.
			for ci, c := range clients {
				for _, p := range c.keys {
					val, found, err := c.cl.Get(p.k, 2*time.Second)
					if err != nil || !found || val != p.v {
						verifyErr = fmt.Errorf("client %d key %s: got (%q, %v, %v), want %q",
							ci, p.k, val, found, err, p.v)
						return
					}
				}
			}
		})
		wait := func(want int) bool {
			for ack < want && s.Elapsed() < deadlineV {
				s.Sleep(time.Millisecond)
			}
			return ack >= want
		}
		if !wait(1) || clientErr != nil {
			phaseErr = fmt.Errorf("warm phase: err=%v ack=%d", clientErr, ack)
			return
		}
		if err := inst.Runtime().ArmFaultSpec(cell.Component, cell.Function,
			core.FaultSpec{Kind: core.FaultCrash, After: after}); err != nil {
			phaseErr = fmt.Errorf("injection: %w", err)
			return
		}
		phase = 2
		if !wait(2) {
			phaseErr = fmt.Errorf("run phase did not finish before the deadline")
			return
		}
		s.Sleep(trialSettle)
		phase = 3
		if !wait(3) {
			phaseErr = fmt.Errorf("verify phase did not finish before the deadline")
		}
	})
	res.Virtual = inst.Runtime().Clock().Elapsed() - v0
	if runErr != nil && phaseErr == nil {
		phaseErr = runErr
	}
	events := rec.Snapshot()
	res.Verdict, res.Oracles, res.Detail = judgeSession(cell, inst, clients, events, phaseErr, verifyErr)
	rt := inst.Runtime()
	res.Reboots = len(rt.Reboots()) + len(rt.Microreboots())
	for _, c := range clients {
		res.ClientErrs += c.errs
	}
	res.recorder = rec
	return res
}

// judgeSession runs the session-recovery oracles. Oracles that depend on
// the fault having fired are vacuously true when it never did, so a cold
// fault site folds to VerdictNotTriggered instead of a regression.
func judgeSession(cell Cell, inst *unikernel.Instance, clients []*sessClient,
	events []trace.Event, phaseErr, verifyErr error) (Verdict, []OracleResult, string) {
	rt := inst.Runtime()
	st := rt.Stats()
	reboots := rt.Reboots()
	micros := rt.Microreboots()
	pending := rt.PendingFaults()
	targetGroup, _ := rt.GroupOf(cell.Component)

	var oracles []OracleResult
	oc := func(name string, ok bool, format string, args ...any) {
		r := OracleResult{Name: name, OK: ok}
		if !ok {
			r.Detail = fmt.Sprintf(format, args...)
		}
		oracles = append(oracles, r)
	}

	triggered := len(pending) == 0 && countKind(events, trace.KindFault) >= 1
	oc("fault-triggered", triggered,
		"fault never fired: pending=%v, fault events=%d", pending, countKind(events, trace.KindFault))

	// The ladder must have engaged at the session rung: the crash struck a
	// session-attributable site, so rung 1 is attempted — it either
	// completes (a MicrorebootRecord, no component reboot) or honestly
	// escalates to exactly one component reboot of the target group.
	attempted := st.Microreboots + st.MicroEscalates
	if triggered {
		oc("session-recovery", attempted >= 1 && st.FailedRestores == 0,
			"rung 1 never attempted or restore failed: microreboots=%d escalations=%d failedRestores=%d",
			st.Microreboots, st.MicroEscalates, st.FailedRestores)
		stray := strayReboots(reboots, targetGroup)
		switch {
		case st.Microreboots >= 1:
			oc("containment", len(micros) == 1 && len(reboots) == 0 && st.MicroEscalates == 0,
				"rung 1 succeeded but recovery leaked: microreboots=%d reboots=%d escalations=%d",
				len(micros), len(reboots), st.MicroEscalates)
		case st.MicroEscalates >= 1:
			oc("containment", len(reboots) == 1 && len(stray) == 0,
				"escalation leaked past the target group: reboots=%d stray=%v", len(reboots), stray)
		}
	}

	// Untouched sessions observe zero errors. The recovery machinery
	// retries the faulted call transparently too, so the budget is zero
	// for every client, victim included.
	totalErrs := 0
	for _, c := range clients {
		totalErrs += c.errs
	}
	oc("untouched-sessions", totalErrs == 0,
		"%d client errors across %d sessions (want 0 everywhere)", totalErrs, len(clients))

	// No latency spike beyond one dispatch: an op issued while the group
	// recovers waits out the recovery plus its own dispatch, nothing more.
	if triggered {
		var recoveryV time.Duration
		for _, m := range micros {
			recoveryV += m.VirtualDuration
		}
		for _, r := range reboots {
			recoveryV += r.VirtualDuration
		}
		latOK := true
		detail := ""
		for ci, c := range clients {
			if bound := c.warmMax + recoveryV + sessionLatencySlack; c.runMax > bound {
				latOK = false
				detail = fmt.Sprintf("client %d: worst run SET %v exceeds bound %v (warm %v + recovery %v + slack)",
					ci, c.runMax, bound, c.warmMax, recoveryV)
				break
			}
		}
		oc("latency-bound", latOK, "%s", detail)
	}

	// The trace tells the same story as the runtime records: one
	// KindMicroreboot span per attempt, escalations parented to it.
	spans := trace.Microreboots(events)
	traceOK := trace.Validate(events) == nil && uint64(len(spans)) == attempted
	if traceOK && st.Microreboots >= 1 {
		traceOK = len(spans) == 1 && !spans[0].Escalated && len(spans[0].Phases) >= 3
	}
	if traceOK && st.MicroEscalates >= 1 {
		traceOK = len(spans) == 1 && spans[0].Escalated
	}
	oc("trace-complete", traceOK, "validate=%v spans=%d attempted=%d (%+v)",
		trace.Validate(events), len(spans), attempted, spans)

	invOK := phaseErr == nil && verifyErr == nil
	oc("invariants", invOK, "phaseErr=%v verify=%v", phaseErr, verifyErr)

	allOK := true
	var failed []string
	for _, o := range oracles {
		if !o.OK {
			allOK = false
			failed = append(failed, o.Name)
		}
	}
	detail := ""
	if phaseErr != nil {
		detail = phaseErr.Error()
	}
	switch {
	case allOK:
		return VerdictPass, oracles, detail
	case !triggered && onlySessionTriggerFailed(oracles):
		return VerdictNotTriggered, oracles, "fault site not reached by this workload"
	default:
		if detail == "" {
			detail = "oracle failures: " + strings.Join(failed, ", ")
		}
		return VerdictFail, oracles, detail
	}
}

// onlySessionTriggerFailed mirrors onlyTriggerFailed for the session
// oracle set: an unreached fault site vacuously fails only the trigger
// oracle — service or invariant violations still fail the trial.
func onlySessionTriggerFailed(oracles []OracleResult) bool {
	for _, o := range oracles {
		if !o.OK && o.Name != "fault-triggered" {
			return false
		}
	}
	return true
}
