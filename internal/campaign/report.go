package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"vampos/internal/trace"
)

// CellResult is one judged trial. Every JSON-serialised field is
// deterministic for a given campaign seed: virtual durations, verdicts
// and oracle outputs are identical whatever -parallel is, so matrices
// from different runs and different hosts diff cleanly.
type CellResult struct {
	Cell
	TrialID    string         `json:"id"`
	Verdict    Verdict        `json:"verdict"`
	After      int            `json:"after"` // seed-derived injection ordinal
	Oracles    []OracleResult `json:"oracles"`
	Detail     string         `json:"detail,omitempty"`
	Virtual    time.Duration  `json:"virtual_ns"`
	Reboots    int            `json:"reboots"`
	ClientErrs int            `json:"client_errors"`
	TraceFile  string         `json:"trace_file,omitempty"`

	recorder *trace.Recorder
}

// Matrix is the campaign's recovery matrix: every cell's verdict plus
// the seed that reproduces it.
type Matrix struct {
	Seed  int64        `json:"seed"`
	Cells []CellResult `json:"cells"`
}

// Unexpected returns the cells that count as regressions: failures on
// expected-recoverable cells, plus wildcard fault sites that never
// triggered (the drivers guarantee wildcard sites are reached).
func (m *Matrix) Unexpected() []CellResult {
	var out []CellResult
	for _, c := range m.Cells {
		if c.Verdict == VerdictFail {
			out = append(out, c)
		}
		if c.Verdict == VerdictNotTriggered && c.Function == "*" {
			out = append(out, c)
		}
	}
	return out
}

// Counts tallies verdicts.
func (m *Matrix) Counts() map[Verdict]int {
	out := make(map[Verdict]int)
	for _, c := range m.Cells {
		out[c.Verdict]++
	}
	return out
}

// WriteJSON serialises the matrix. The output is byte-identical across
// -parallel settings and hosts for the same seed and space.
func (m *Matrix) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Render draws the recovery matrix as one grid per workload × config:
// components down, fault kinds across.
func (m *Matrix) Render() string {
	symbol := map[Verdict]string{
		VerdictPass:         "pass",
		VerdictFail:         "FAIL",
		VerdictExpected:     "exp-unrec",
		VerdictNotTriggered: "not-trig",
	}
	type gridKey struct{ w, c string }
	grids := make(map[gridKey]map[string]map[FaultName][]CellResult)
	var gridOrder []gridKey
	var faultOrder []FaultName
	seenFault := map[FaultName]bool{}
	for _, cell := range m.Cells {
		k := gridKey{cell.Workload, cell.Config}
		if grids[k] == nil {
			grids[k] = make(map[string]map[FaultName][]CellResult)
			gridOrder = append(gridOrder, k)
		}
		if grids[k][cell.Component] == nil {
			grids[k][cell.Component] = make(map[FaultName][]CellResult)
		}
		grids[k][cell.Component][cell.Fault] = append(grids[k][cell.Component][cell.Fault], cell)
		if !seenFault[cell.Fault] {
			seenFault[cell.Fault] = true
			faultOrder = append(faultOrder, cell.Fault)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "== Recovery matrix (seed %d, %d trials) ==\n", m.Seed, len(m.Cells))
	for _, k := range gridOrder {
		fmt.Fprintf(&b, "\n-- %s on %s --\n", k.w, k.c)
		comps := make([]string, 0, len(grids[k]))
		for c := range grids[k] {
			comps = append(comps, c)
		}
		sort.Strings(comps)
		width := 12
		for _, f := range faultOrder {
			if len(f)+2 > width {
				width = len(f) + 2
			}
		}
		fmt.Fprintf(&b, "  %-10s", "component")
		for _, f := range faultOrder {
			fmt.Fprintf(&b, "%-*s", width, f)
		}
		b.WriteByte('\n')
		for _, comp := range comps {
			fmt.Fprintf(&b, "  %-10s", comp)
			for _, f := range faultOrder {
				cells := grids[k][comp][f]
				switch {
				case len(cells) == 0:
					fmt.Fprintf(&b, "%-*s", width, "-")
				case len(cells) == 1:
					fmt.Fprintf(&b, "%-*s", width, symbol[cells[0].Verdict])
				default:
					// Per-function campaign: summarise the column.
					counts := map[Verdict]int{}
					for _, c := range cells {
						counts[c.Verdict]++
					}
					fmt.Fprintf(&b, "%-*s", width, fmt.Sprintf("%d/%d ok", counts[VerdictPass], len(cells)))
				}
			}
			b.WriteByte('\n')
		}
	}
	counts := m.Counts()
	fmt.Fprintf(&b, "\ntotals: %d pass, %d fail, %d expected-unrecoverable, %d not-triggered\n",
		counts[VerdictPass], counts[VerdictFail], counts[VerdictExpected], counts[VerdictNotTriggered])
	for _, c := range m.Unexpected() {
		fmt.Fprintf(&b, "UNEXPECTED %s: %s\n", c.TrialID, c.Detail)
	}
	return b.String()
}

// traceFileName maps a cell ID to its forensics dump file name.
func traceFileName(id string) string {
	return strings.ReplaceAll(id, "/", "_") + ".trace.json"
}

// dumpTrace writes the trial's Chrome trace into dir for post-mortem
// loading at ui.perfetto.dev / chrome://tracing.
func dumpTrace(dir string, res *CellResult) error {
	if res.recorder == nil {
		return fmt.Errorf("no recorder for %s", res.TrialID)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, traceFileName(res.TrialID))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteChrome(f, res.recorder); err != nil {
		return err
	}
	res.TraceFile = path
	return nil
}
