package campaign

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"vampos/internal/cluster"
	"vampos/internal/core"
	"vampos/internal/trace"
	"vampos/internal/unikernel"
)

// Cluster trial shape. Small enough that a cell stays in the same
// real-time budget as a single-instance trial, large enough that every
// member owns keys and the gossip flood has work to do.
const (
	clusterNodes       = 3
	clusterReplication = 2
	clusterWarmKeys    = 12
	clusterOutageKeys  = 6
	clusterPostKeys    = 4
)

// runClusterTrial executes one multi-instance cell: boot a cluster,
// acknowledge a warm write set, inflict the instance-level fault on the
// victim member, keep serving through the outage, recover, and judge
// with the convergence oracle — surviving replicas byte-agree, zero
// acknowledged writes lost, partitions heal to a single state. The
// coordinator serialises all member execution, so the trial is exactly
// as deterministic as a single-instance one.
func runClusterTrial(cell Cell, opts Options) (res CellResult) {
	res = CellResult{Cell: cell, TrialID: cell.ID()}
	defer func() {
		if r := recover(); r != nil {
			res.Verdict = VerdictFail
			res.Detail = fmt.Sprintf("trial panicked: %v", r)
		}
	}()
	seed := trialSeed(opts.Seed, cell.ID())
	after := 1 + int(seed%3)
	res.After = after

	victim, err := clusterVictim(cell.Component)
	if err != nil {
		return failResult(res, err)
	}
	cc, err := coreConfigFor(cell.Config)
	if err != nil {
		return failResult(res, err)
	}
	cc.HangThreshold = trialHangThreshold
	cc.Shards = opts.Shards
	cc.WatchdogPeriod = trialWatchdogPeriod
	cc.MaxVirtualTime = trialMaxVirtual
	cc.Ckpt = opts.Ckpt
	cc.ReplayRetCheck = opts.ReplayRetCheck

	var rec *trace.Recorder
	c, err := cluster.New(cluster.Config{
		Nodes:       clusterNodes,
		Replication: clusterReplication,
		Core:        cc,
		OnInstance: func(id int, inst *unikernel.Instance) {
			// Record the victim's first life: the pre-fault instance whose
			// death the trial is about.
			if id == victim && rec == nil {
				rec = inst.NewTracer("campaign/"+cell.ID(), trace.WithCapacity(1<<14))
			}
		},
	})
	if err != nil {
		return failResult(res, err)
	}
	defer c.Stop()

	shadow := map[string]string{} // every acknowledged write
	ackErrs := 0                  // writes that had to ack but did not
	put := func(via int, key, val string) error {
		err := c.PutVia(via, key, val)
		if err == nil {
			shadow[key] = val
		}
		return err
	}
	mustPut := func(via int, key, val string) {
		if err := put(via, key, val); err != nil {
			ackErrs++
		}
	}
	valFor := func(i int) string { return fmt.Sprintf("v%d-%04x", i, (seed>>8)&0xffff) }

	for i := 0; i < clusterWarmKeys; i++ {
		mustPut((i+after)%clusterNodes, fmt.Sprintf("warm%02d", i), valFor(i))
	}
	if _, err := c.GossipUntilQuiet(); err != nil {
		return failResult(res, fmt.Errorf("warm gossip: %w", err))
	}

	var oracles []OracleResult
	oc := func(name string, ok bool, format string, args ...any) {
		r := OracleResult{Name: name, OK: ok}
		if !ok {
			r.Detail = fmt.Sprintf(format, args...)
		}
		oracles = append(oracles, r)
	}

	survivors := make([]int, 0, clusterNodes-1)
	for id := 0; id < clusterNodes; id++ {
		if id != victim {
			survivors = append(survivors, id)
		}
	}

	switch cell.Fault {
	case FaultInstanceKill:
		// The fault is a VIRTIO failure on the victim: the paper's
		// unrebootable component. The first rung (component reboot) must
		// refuse, and the ladder must escalate to instance kill.
		esc, err := c.RecoverComponent(victim, "virtio")
		oc("escalation", err == nil && esc.Escalated && errors.Is(esc.Err, core.ErrUnrebootable) && !c.Alive(victim),
			"want component reboot refused (ErrUnrebootable) then instance kill; got rec=%+v err=%v alive=%v",
			esc, err, c.Alive(victim))
		// Failover: with one member dead, every write still finds a
		// quorum among the survivors and must acknowledge.
		for i := 0; i < clusterOutageKeys; i++ {
			mustPut(survivors[(i+after)%len(survivors)], fmt.Sprintf("out%02d", i), valFor(100+i))
		}
		oc("failover", ackErrs == 0, "%d writes failed to ack during the outage", ackErrs)
		// Second rung completes: reboot the instance and resync it from
		// the survivors before it serves again.
		if err := c.ReviveInstance(victim); err != nil {
			return failResult(res, fmt.Errorf("revive: %w", err))
		}
		for i := 0; i < clusterPostKeys; i++ {
			mustPut((victim + i) % clusterNodes, fmt.Sprintf("post%02d", i), valFor(200+i))
		}

	case FaultPartition:
		c.Isolate(victim)
		// Majority side: quorum intact, every write acknowledges.
		for i := 0; i < clusterOutageKeys; i++ {
			mustPut(survivors[(i+after)%len(survivors)], fmt.Sprintf("maj%02d", i), valFor(100+i))
		}
		oc("failover", ackErrs == 0, "%d majority writes failed to ack", ackErrs)
		// Minority side: no quorum, every write must be refused — an
		// acknowledged-then-lost write is exactly what the oracle forbids.
		minorityAcked := 0
		for i := 0; i < clusterPostKeys; i++ {
			if put(victim, fmt.Sprintf("min%02d", i), valFor(200+i)) == nil {
				minorityAcked++
			}
		}
		oc("partition-safety", minorityAcked == 0,
			"%d writes acknowledged by the partitioned minority", minorityAcked)
		c.Heal()

	default:
		return failResult(res, fmt.Errorf("campaign: fault %q is not a cluster fault", cell.Fault))
	}

	// Reconverge and judge.
	if _, err := c.GossipUntilQuiet(); err != nil {
		oc("convergence", false, "gossip did not go quiet: %v", err)
	} else {
		conv, err := c.Converged()
		oc("convergence", err == nil && conv, "replicas disagree after recovery (err=%v)", err)
	}

	// Durability: every acknowledged write is present with its exact
	// value on every live member — including a revived victim, whose
	// local state died with the instance.
	durable := true
	detail := ""
	keys := make([]string, 0, len(shadow))
	for k := range shadow {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for id := 0; id < clusterNodes; id++ {
			if !c.Alive(id) {
				continue
			}
			got, ok, err := c.GetFrom(id, k)
			if err != nil || !ok || got != shadow[k] {
				durable = false
				detail = fmt.Sprintf("node %d: %q = %q (present=%v, err=%v), want %q", id, k, got, ok, err, shadow[k])
				break
			}
		}
		if !durable {
			break
		}
	}
	oc("durability", durable, "acknowledged write lost: %s", detail)

	st := c.Stats()
	oc("service", ackErrs == 0, "%d quorum-reachable writes failed to ack (stats %+v)", ackErrs, st)

	res.Oracles = oracles
	res.Reboots = int(st.ComponentReboots + st.Revives)
	res.ClientErrs = int(st.Rejected)
	var maxV time.Duration
	for id := 0; id < clusterNodes; id++ {
		if v := c.NodeVirtual(id); v > maxV {
			maxV = v
		}
	}
	res.Virtual = maxV
	res.recorder = rec

	allOK := true
	var failed []string
	for _, o := range oracles {
		if !o.OK {
			allOK = false
			failed = append(failed, o.Name)
		}
	}
	if allOK {
		res.Verdict = VerdictPass
	} else {
		res.Verdict = VerdictFail
		res.Detail = "oracle failures: " + strings.Join(failed, ", ")
	}
	return res
}

// clusterVictim parses the victim ordinal out of a "nodeK" component.
func clusterVictim(component string) (int, error) {
	s, ok := strings.CutPrefix(component, "node")
	if !ok {
		return 0, fmt.Errorf("campaign: cluster component %q is not nodeK", component)
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 || v >= clusterNodes {
		return 0, fmt.Errorf("campaign: cluster victim %q out of range 0..%d", component, clusterNodes-1)
	}
	return v, nil
}
