package campaign

import (
	"bytes"
	"testing"
)

// TestMatrixShardInvariant: the sharded batons must not move a single
// byte of the campaign matrix. The sqlite+redis matrix (every component
// each workload exercises, both fail-stop faults) is run at shard counts
// 1, 2 and 4, crossed with different worker-pool sizes; every run must
// serialize to the identical JSON, and every cell must pass its oracle.
// This is the campaign-level face of the determinism contract: batch
// composition and merge order are pure functions of the seed, so neither
// the shard count nor host parallelism can leak into results.
func TestMatrixShardInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full two-workload matrix at three shard counts")
	}
	space := SpaceOptions{
		Workloads: []string{"sqlite", "redis"},
		Configs:   []string{"das"},
		Faults:    DefaultFaults(),
	}
	run := func(parallel, shards int) []byte {
		t.Helper()
		m, err := Run(Options{Space: space, Seed: 1234, Parallel: parallel, Shards: shards})
		if err != nil {
			t.Fatalf("campaign run (parallel=%d shards=%d): %v", parallel, shards, err)
		}
		for _, c := range m.Cells {
			// VIRTIO cells are expected-unrecoverable by design (the
			// device shares state with the host); everything else must
			// recover and pass its oracles.
			if c.Verdict != VerdictPass && c.Verdict != VerdictExpected {
				t.Errorf("parallel=%d shards=%d %s: verdict %s (detail: %s)",
					parallel, shards, c.TrialID, c.Verdict, c.Detail)
			}
		}
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	ref := run(1, 1)
	for _, cfg := range []struct{ parallel, shards int }{
		{4, 1}, {1, 2}, {4, 2}, {2, 4},
	} {
		got := run(cfg.parallel, cfg.shards)
		if !bytes.Equal(ref, got) {
			t.Fatalf("matrix differs from parallel=1 shards=1 at parallel=%d shards=%d:\nref: %s\ngot: %s",
				cfg.parallel, cfg.shards, ref, got)
		}
	}
}
