package campaign

import (
	"bytes"
	"testing"

	"vampos/internal/core"
)

// sessionSpace is the sessioncrash slice the CI job runs: per-session
// fault sites on the vfs hot path of the many-connection redis workload.
func sessionSpace() SpaceOptions {
	return SpaceOptions{
		Workloads:  []string{"redis"},
		Configs:    []string{"das"},
		Components: []string{"vfs"},
		Faults:     []FaultName{FaultSessionCrash},
	}
}

// TestSessionSpaceEnumeration: sessioncrash cells pair only with redis,
// enumerate per-function over session-attributable exports, and never
// use the wildcard site.
func TestSessionSpaceEnumeration(t *testing.T) {
	cells, err := EnumerateSpace(SpaceOptions{
		Workloads: []string{"sqlite", "redis"},
		Configs:   []string{"das"},
		Faults:    []FaultName{FaultSessionCrash},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("no sessioncrash cells enumerated")
	}
	comps := map[string]bool{}
	for _, c := range cells {
		if c.Workload != "redis" {
			t.Errorf("cell %s: sessioncrash paired with %s", c.ID(), c.Workload)
		}
		if c.Function == core.AnyFunction {
			t.Errorf("cell %s: sessioncrash must be per-function", c.ID())
		}
		comps[c.Component] = true
	}
	for _, want := range []string{"vfs", "lwip", "9pfs"} {
		if !comps[want] {
			t.Errorf("no sessioncrash cells for session-bearing component %q (got %v)", want, comps)
		}
	}
	if comps["virtio"] || comps["process"] {
		t.Errorf("sessioncrash cells on non-session components: %v", comps)
	}
}

// TestSessionCampaignSlice: crashes on the hot per-session vfs sites
// must recover at the session rung with untouched sessions observing
// zero errors, and the matrix must be byte-identical across -parallel.
func TestSessionCampaignSlice(t *testing.T) {
	trials := []string{
		"redis/das/vfs/read/sessioncrash",
		"redis/das/vfs/write/sessioncrash",
	}
	run := func(parallel int) *Matrix {
		m, err := Run(Options{Space: sessionSpace(), Seed: 11, Parallel: parallel, Trials: trials})
		if err != nil {
			t.Fatalf("campaign run: %v", err)
		}
		return m
	}
	serial := run(1)
	parallel := run(2)
	sj, pj := matrixJSON(t, serial), matrixJSON(t, parallel)
	if !bytes.Equal(sj, pj) {
		t.Fatalf("session matrix differs across -parallel:\nserial:   %s\nparallel: %s", sj, pj)
	}
	for _, c := range serial.Cells {
		if c.Verdict != VerdictPass {
			t.Errorf("%s: verdict %s (detail: %s, oracles: %+v)", c.TrialID, c.Verdict, c.Detail, c.Oracles)
		}
		if c.ClientErrs != 0 {
			t.Errorf("%s: %d client errors, want 0 on every session", c.TrialID, c.ClientErrs)
		}
	}
}
