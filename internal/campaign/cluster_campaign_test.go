package campaign

import (
	"bytes"
	"testing"
)

func clusterSpace() SpaceOptions {
	return SpaceOptions{
		Workloads: []string{ClusterWorkload},
		Configs:   []string{"das"},
		Faults:    []FaultName{FaultInstanceKill, FaultPartition},
	}
}

func runClusterSlice(t *testing.T, parallel int, seed int64) *Matrix {
	t.Helper()
	m, err := Run(Options{Space: clusterSpace(), Seed: seed, Parallel: parallel})
	if err != nil {
		t.Fatalf("cluster campaign run: %v", err)
	}
	return m
}

// TestClusterCampaignSlice: every instance-kill and partition cell
// passes the convergence oracle, and the matrix is byte-identical
// across -parallel settings — multi-instance trials inherit the
// campaign's determinism because the cluster coordinator serialises
// all member execution.
func TestClusterCampaignSlice(t *testing.T) {
	serial := runClusterSlice(t, 1, 42)
	parallel := runClusterSlice(t, 4, 42)
	sj, pj := matrixJSON(t, serial), matrixJSON(t, parallel)
	if !bytes.Equal(sj, pj) {
		t.Fatalf("cluster matrix differs between -parallel 1 and 4:\nserial:   %s\nparallel: %s", sj, pj)
	}
	// 3 victims × 2 fault kinds on one config.
	if len(serial.Cells) != 6 {
		t.Fatalf("cluster slice has %d cells, want 6", len(serial.Cells))
	}
	for _, c := range serial.Cells {
		if c.Verdict != VerdictPass {
			t.Errorf("%s: verdict %s (detail: %s)", c.TrialID, c.Verdict, c.Detail)
		}
		want := map[string]bool{"failover": false, "convergence": false, "durability": false, "service": false}
		switch c.Fault {
		case FaultInstanceKill:
			want["escalation"] = false
		case FaultPartition:
			want["partition-safety"] = false
		}
		for _, o := range c.Oracles {
			if _, req := want[o.Name]; req {
				want[o.Name] = true
			}
			if !o.OK {
				t.Errorf("%s: oracle %s failed: %s", c.TrialID, o.Name, o.Detail)
			}
		}
		for name, seen := range want {
			if !seen {
				t.Errorf("%s: oracle %q missing", c.TrialID, name)
			}
		}
		if c.Virtual <= 0 {
			t.Errorf("%s: no virtual time recorded", c.TrialID)
		}
		if c.Fault == FaultInstanceKill && c.Reboots < 1 {
			t.Errorf("%s: instance kill recorded no recovery", c.TrialID)
		}
	}
	if un := serial.Unexpected(); len(un) != 0 {
		t.Fatalf("unexpected failures: %v", un)
	}
}

// TestClusterSpaceEnumeration: the cluster workload enumerates victim ×
// fault cells, cluster faults never leak into single-instance
// workloads, and the default fault slice maps to both cluster kinds.
func TestClusterSpaceEnumeration(t *testing.T) {
	cells, err := EnumerateSpace(SpaceOptions{Workloads: []string{ClusterWorkload}, Configs: []string{"das"}})
	if err != nil {
		t.Fatalf("EnumerateSpace: %v", err)
	}
	if len(cells) != 6 {
		t.Fatalf("default cluster space has %d cells, want 6", len(cells))
	}
	for _, c := range cells {
		if !c.Fault.clusterFault() {
			t.Errorf("cluster cell %s has non-cluster fault", c.ID())
		}
		if c.Expected {
			t.Errorf("cluster cell %s marked expected-unrecoverable", c.ID())
		}
	}

	single, err := EnumerateSpace(SpaceOptions{
		Workloads: []string{"echo"}, Configs: []string{"das"},
		Faults: []FaultName{FaultCrash, FaultInstanceKill},
	})
	if err != nil {
		t.Fatalf("EnumerateSpace(echo): %v", err)
	}
	if len(single) == 0 {
		t.Fatal("echo space empty")
	}
	for _, c := range single {
		if c.Fault.clusterFault() {
			t.Errorf("single-instance cell %s got cluster fault", c.ID())
		}
	}

	filtered, err := EnumerateSpace(SpaceOptions{
		Workloads:  []string{ClusterWorkload},
		Configs:    []string{"das"},
		Components: []string{"node1"},
		Faults:     []FaultName{FaultPartition},
	})
	if err != nil {
		t.Fatalf("EnumerateSpace(node1): %v", err)
	}
	if len(filtered) != 1 || filtered[0].Component != "node1" || filtered[0].Fault != FaultPartition {
		t.Fatalf("filtered cluster space: %+v", filtered)
	}
}
