package campaign

import (
	"fmt"
	"strings"
	"time"

	"vampos/internal/apps/echo"
	"vampos/internal/apps/nginx"
	"vampos/internal/apps/redis"
	"vampos/internal/apps/sqlite"
	"vampos/internal/bench"
	"vampos/internal/sched"
	"vampos/internal/unikernel"
)

// driver runs one workload through a trial's three phases. warm builds
// up application state before the fault is armed; run keeps the workload
// going while the fault fires and recovery happens, tolerating (but
// counting) client-visible errors; verify checks the application-level
// invariants against the shadow model after the system has settled, with
// zero tolerance.
type driver interface {
	app() unikernel.App
	profile(cfg unikernel.Config) unikernel.Config
	setupHost(inst *unikernel.Instance) error
	warm(s *unikernel.Sys, t *trial) error
	run(s *unikernel.Sys, t *trial)
	verify(s *unikernel.Sys, t *trial) error
}

func driverFor(workload string) (driver, error) {
	switch workload {
	case "sqlite":
		return newSQLiteApp(), nil
	case "nginx":
		return newNginxApp(), nil
	case "redis":
		return newRedisApp(), nil
	case "echo":
		return newEchoApp(), nil
	default:
		return nil, fmt.Errorf("campaign: unknown workload %q", workload)
	}
}

// sweep invokes every utility component the profile links — PROCESS,
// USER, TIMER, SYSINFO and (through VFS) the file-system path — so that
// wildcard faults armed on components off the workload's hot path still
// fire within a few sweep rounds. Call failures count as client errors:
// crash and hang recovery is transparent to these retried syscalls, so a
// surviving error is a real service violation.
func (t *trial) sweep(s *unikernel.Sys) {
	check := func(err error) {
		if err != nil {
			t.errs++
		}
	}
	_, err := s.Getpid()
	check(err)
	_, err = s.Getuid()
	check(err)
	_, err = s.ClockGettime()
	check(err)
	if t.profile.Sysinfo {
		_, err = s.Uname()
		check(err)
	}
	if t.profile.FS {
		_, _, err = s.Stat("/")
		check(err)
	}
}

// --- sqlite: in-process key/value inserts with a shadow table ---

type sqliteDriver struct {
	db     *sqlite.App
	shadow []kvPair
}

type kvPair struct{ k, v string }

func newSQLiteApp() *sqliteDriver { return &sqliteDriver{db: sqlite.New()} }

func (d *sqliteDriver) app() unikernel.App                            { return d.db }
func (d *sqliteDriver) profile(cfg unikernel.Config) unikernel.Config { return d.db.Profile(cfg) }
func (d *sqliteDriver) setupHost(inst *unikernel.Instance) error      { return nil }

func (d *sqliteDriver) insert(s *unikernel.Sys, t *trial, i int) {
	k, v := fmt.Sprintf("k%03d", i), fmt.Sprintf("v%03d", i)
	if _, err := d.db.Exec(s, fmt.Sprintf("INSERT INTO kv VALUES ('%s', '%s')", k, v)); err != nil {
		t.errs++
		return
	}
	d.shadow = append(d.shadow, kvPair{k, v})
}

func (d *sqliteDriver) warm(s *unikernel.Sys, t *trial) error {
	if _, err := d.db.Exec(s, "CREATE TABLE kv (k, v)"); err != nil {
		return err
	}
	for i := 0; i < 20; i++ {
		d.insert(s, t, i)
	}
	if t.errs > 0 {
		return fmt.Errorf("%d insert errors before injection", t.errs)
	}
	return nil
}

func (d *sqliteDriver) run(s *unikernel.Sys, t *trial) {
	for i := 20; i < 60; i++ {
		d.insert(s, t, i)
		if i%8 == 0 {
			t.sweep(s)
		}
	}
}

func (d *sqliteDriver) verify(s *unikernel.Sys, t *trial) error {
	for _, p := range d.shadow {
		res, err := d.db.Exec(s, fmt.Sprintf("SELECT * FROM kv WHERE k = '%s'", p.k))
		if err != nil {
			return fmt.Errorf("select %s: %w", p.k, err)
		}
		if len(res.Rows) != 1 || len(res.Rows[0]) != 2 || res.Rows[0][1] != p.v {
			return fmt.Errorf("row %s: got %v, want value %q", p.k, res.Rows, p.v)
		}
	}
	return nil
}

// --- nginx: HTTP GETs with byte-correct response checking ---

type nginxDriver struct {
	web  *nginx.App
	body []byte
}

func newNginxApp() *nginxDriver {
	return &nginxDriver{web: nginx.New(), body: []byte(strings.Repeat("campaign-index!\n", 12))}
}

func (d *nginxDriver) app() unikernel.App                            { return d.web }
func (d *nginxDriver) profile(cfg unikernel.Config) unikernel.Config { return d.web.Profile(cfg) }

func (d *nginxDriver) setupHost(inst *unikernel.Instance) error {
	return inst.Host().FS().WriteFile("/www/index.html", d.body)
}

// fetchLoop runs count GETs from a host client thread, redialing on
// failure; errors are counted, body mismatches are corruption.
func (d *nginxDriver) fetchLoop(s *unikernel.Sys, t *trial, count int, timeout time.Duration, strict bool) func() error {
	done := false
	var firstErr error
	peer := s.NewPeer()
	s.GoHost("campaign/http", func(th *sched.Thread) {
		defer func() { done = true }()
		var cl *bench.HTTPClient
		dial := func() bool {
			for !t.pastDeadline(s) {
				var err error
				cl, err = bench.DialHTTP(s, th, peer, nginx.DefaultPort, timeout)
				if err == nil {
					return true
				}
				if strict && firstErr == nil {
					firstErr = err
				}
				t.errs++
				th.Sleep(20 * time.Millisecond)
			}
			return false
		}
		if !dial() {
			return
		}
		for i := 0; i < count && !t.pastDeadline(s); i++ {
			body, err := cl.GetBody("/index.html", timeout)
			if err != nil {
				t.errs++
				if strict && firstErr == nil {
					firstErr = err
				}
				cl.Close()
				if !dial() {
					return
				}
				continue
			}
			if string(body) != string(d.body) {
				t.corrupt++
				if firstErr == nil {
					firstErr = fmt.Errorf("body mismatch: got %d bytes %q...", len(body), clip(body))
				}
			}
		}
		cl.Close()
	})
	return func() error {
		for !done {
			s.Sleep(time.Millisecond)
		}
		return firstErr
	}
}

func (d *nginxDriver) warm(s *unikernel.Sys, t *trial) error {
	errsBefore := t.errs
	if err := d.fetchLoop(s, t, 5, 2*time.Second, true)(); err != nil {
		return err
	}
	if t.errs != errsBefore {
		return fmt.Errorf("%d fetch errors before injection", t.errs-errsBefore)
	}
	return nil
}

func (d *nginxDriver) run(s *unikernel.Sys, t *trial) {
	wait := d.fetchLoop(s, t, 40, time.Second, false)
	for i := 0; i < 6; i++ {
		t.sweep(s)
		s.Sleep(50 * time.Millisecond)
	}
	_ = wait()
}

func (d *nginxDriver) verify(s *unikernel.Sys, t *trial) error {
	errsBefore := t.errs
	if err := d.fetchLoop(s, t, 5, 2*time.Second, true)(); err != nil {
		return err
	}
	if t.errs != errsBefore {
		return fmt.Errorf("%d fetch errors after settling", t.errs-errsBefore)
	}
	return nil
}

// --- redis: SETs tracked in a shadow store, verified by GETs ---

type redisDriver struct {
	kv     *redis.App
	shadow []kvPair
}

func newRedisApp() *redisDriver { return &redisDriver{kv: redis.New()} }

func (d *redisDriver) app() unikernel.App                            { return d.kv }
func (d *redisDriver) profile(cfg unikernel.Config) unikernel.Config { return d.kv.Profile(cfg) }
func (d *redisDriver) setupHost(inst *unikernel.Instance) error      { return nil }

// setLoop issues count SETs from a host client thread; only
// acknowledged SETs enter the shadow store.
func (d *redisDriver) setLoop(s *unikernel.Sys, t *trial, start, count int, timeout time.Duration) func() {
	done := false
	peer := s.NewPeer()
	s.GoHost("campaign/redis-set", func(th *sched.Thread) {
		defer func() { done = true }()
		var cl *bench.RedisClient
		dial := func() bool {
			for !t.pastDeadline(s) {
				var err error
				cl, err = bench.DialRedis(s, th, peer, redis.DefaultPort, timeout)
				if err == nil {
					return true
				}
				t.errs++
				th.Sleep(20 * time.Millisecond)
			}
			return false
		}
		if !dial() {
			return
		}
		for i := start; i < start+count && !t.pastDeadline(s); i++ {
			k, v := fmt.Sprintf("c%03d", i), fmt.Sprintf("w%03d", i)
			if err := cl.Set(k, v, timeout); err != nil {
				t.errs++
				cl.Close()
				if !dial() {
					return
				}
				continue
			}
			d.shadow = append(d.shadow, kvPair{k, v})
		}
		cl.Close()
	})
	return func() {
		for !done {
			s.Sleep(time.Millisecond)
		}
	}
}

func (d *redisDriver) warm(s *unikernel.Sys, t *trial) error {
	errsBefore := t.errs
	d.setLoop(s, t, 0, 20, 2*time.Second)()
	if t.errs != errsBefore {
		return fmt.Errorf("%d SET errors before injection", t.errs-errsBefore)
	}
	return nil
}

func (d *redisDriver) run(s *unikernel.Sys, t *trial) {
	wait := d.setLoop(s, t, 20, 40, time.Second)
	for i := 0; i < 6; i++ {
		t.sweep(s)
		s.Sleep(50 * time.Millisecond)
	}
	wait()
}

func (d *redisDriver) verify(s *unikernel.Sys, t *trial) error {
	done := false
	var verr error
	peer := s.NewPeer()
	s.GoHost("campaign/redis-verify", func(th *sched.Thread) {
		defer func() { done = true }()
		cl, err := bench.DialRedis(s, th, peer, redis.DefaultPort, 2*time.Second)
		if err != nil {
			verr = fmt.Errorf("dial after settling: %w", err)
			return
		}
		defer cl.Close()
		for _, p := range d.shadow {
			val, found, err := cl.Get(p.k, 2*time.Second)
			if err != nil {
				verr = fmt.Errorf("GET %s: %w", p.k, err)
				return
			}
			if !found || val != p.v {
				verr = fmt.Errorf("key %s: got (%q, %v), want %q", p.k, val, found, p.v)
				return
			}
		}
	})
	for !done {
		s.Sleep(time.Millisecond)
	}
	return verr
}

// --- echo: fixed payload round trips, byte-compared ---

type echoDriver struct {
	e       *echo.App
	payload []byte
}

func newEchoApp() *echoDriver {
	return &echoDriver{e: echo.New(), payload: []byte(strings.Repeat("campaign-echo-99", 10)[:159])}
}

func (d *echoDriver) app() unikernel.App                            { return d.e }
func (d *echoDriver) profile(cfg unikernel.Config) unikernel.Config { return d.e.Profile(cfg) }
func (d *echoDriver) setupHost(inst *unikernel.Instance) error      { return nil }

func (d *echoDriver) echoLoop(s *unikernel.Sys, t *trial, count int, timeout time.Duration, strict bool) func() error {
	done := false
	var firstErr error
	peer := s.NewPeer()
	s.GoHost("campaign/echo", func(th *sched.Thread) {
		defer func() { done = true }()
		var cl *bench.EchoClient
		dial := func() bool {
			for !t.pastDeadline(s) {
				var err error
				cl, err = bench.DialEcho(s, th, peer, echo.DefaultPort, timeout)
				if err == nil {
					return true
				}
				if strict && firstErr == nil {
					firstErr = err
				}
				t.errs++
				th.Sleep(20 * time.Millisecond)
			}
			return false
		}
		if !dial() {
			return
		}
		for i := 0; i < count && !t.pastDeadline(s); i++ {
			got, err := cl.RoundTripBody(d.payload, timeout)
			if err != nil {
				t.errs++
				if strict && firstErr == nil {
					firstErr = err
				}
				cl.Close()
				if !dial() {
					return
				}
				continue
			}
			if string(got) != string(d.payload) {
				t.corrupt++
				if firstErr == nil {
					firstErr = fmt.Errorf("echo mismatch: %q...", clip(got))
				}
			}
		}
		cl.Close()
	})
	return func() error {
		for !done {
			s.Sleep(time.Millisecond)
		}
		return firstErr
	}
}

func (d *echoDriver) warm(s *unikernel.Sys, t *trial) error {
	errsBefore := t.errs
	if err := d.echoLoop(s, t, 5, 2*time.Second, true)(); err != nil {
		return err
	}
	if t.errs != errsBefore {
		return fmt.Errorf("%d echo errors before injection", t.errs-errsBefore)
	}
	return nil
}

func (d *echoDriver) run(s *unikernel.Sys, t *trial) {
	wait := d.echoLoop(s, t, 40, time.Second, false)
	for i := 0; i < 6; i++ {
		t.sweep(s)
		s.Sleep(50 * time.Millisecond)
	}
	_ = wait()
}

func (d *echoDriver) verify(s *unikernel.Sys, t *trial) error {
	errsBefore := t.errs
	if err := d.echoLoop(s, t, 5, 2*time.Second, true)(); err != nil {
		return err
	}
	if t.errs != errsBefore {
		return fmt.Errorf("%d echo errors after settling", t.errs-errsBefore)
	}
	return nil
}

func clip(b []byte) []byte {
	if len(b) > 32 {
		return b[:32]
	}
	return b
}
