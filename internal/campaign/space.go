package campaign

import (
	"fmt"
	"sort"
	"strings"

	"vampos/internal/bench"
	"vampos/internal/core"
	"vampos/internal/unikernel"
)

// FaultName identifies one injected failure mode of the campaign.
type FaultName string

// The campaign's fault dimension: the paper's fail-stop crash and hang
// (§II-B), the transient-errno fault that must not trigger recovery, the
// allocator-leak aging scenario (§VII-D) resolved by a proactive reboot,
// and the wild-write containment scenario (§V-D).
const (
	FaultCrash     FaultName = "crash"
	FaultHang      FaultName = "hang"
	FaultErrno     FaultName = "errno"
	FaultLeak      FaultName = "leak"
	FaultWildWrite FaultName = "wildwrite"
	// FaultAging arms a gradual allocator leak while an adaptive
	// rejuvenation controller (Config.Aging) watches the component's
	// health sensors: recovery must be sensor-triggered, not scheduled.
	FaultAging FaultName = "aging"
	// FaultInstanceKill is an instance-level fault of the cluster
	// workload: a VIRTIO fault on one member that component reboot
	// cannot contain, forcing escalation to whole-instance kill,
	// failover, and reboot-and-resync from the surviving replicas.
	FaultInstanceKill FaultName = "instancekill"
	// FaultPartition is an instance-level fault of the cluster
	// workload: one member is cut off from its peers; the majority must
	// keep acknowledging writes, the minority must refuse them, and the
	// heal must reconverge every replica to one state.
	FaultPartition FaultName = "partition"
	// FaultSessionCrash is a session-granular crash: it pairs only with
	// the redis workload (several persistent client connections), arms a
	// crash on one session-attributable fault site, and expects rung-1
	// recovery — the faulted session evicted and replayed in place while
	// every untouched session observes zero errors. Cells enumerate
	// per-function over the session-bearing exports (never "*": a
	// wildcard could strike a non-session site and legitimately recover
	// at the component rung).
	FaultSessionCrash FaultName = "sessioncrash"
	// FaultTamper is an attack-shaped fault: between calls, a host-side
	// saboteur flips bytes in the component's durable arena. Pairs only
	// with checkpoint-eligible components — the ones whose image history a
	// taint-aware rollback can land on. The arena seal must detect the
	// tamper, recovery must roll back to an image strictly predating the
	// taint watermark, and the reboot must re-randomize the arena layout.
	FaultTamper FaultName = "tamper"
	// FaultBadFrame is an attack-shaped fault at the host boundary: the
	// host corrupts a 9P response frame in flight. Pairs only with the
	// 9PFS component (the frame's consumer). The hardened decoder must
	// reject the frame, the defensive crash must reboot 9PFS, and the
	// interrupted syscall must be retried transparently.
	FaultBadFrame FaultName = "badframe"
	// FaultXDomTouch is an attack-shaped fault: a registered saboteur
	// component attempts PKRU misuse — writing into the cell component's
	// protection domain. The write must be confined (EFAULT, victim
	// intact), and with RebootOnFault armed the offender — not the victim
	// — gets a fresh re-randomized incarnation per attempt.
	FaultXDomTouch FaultName = "xdomtouch"
)

// AllFaults lists every fault kind in presentation order.
func AllFaults() []FaultName {
	return []FaultName{FaultCrash, FaultHang, FaultErrno, FaultLeak, FaultWildWrite, FaultAging,
		FaultInstanceKill, FaultPartition, FaultSessionCrash,
		FaultTamper, FaultBadFrame, FaultXDomTouch}
}

// DefenseFaults lists the attack-shaped fault kinds, which run with the
// defense pipeline armed (Config.Defense) regardless of -defense.
func DefenseFaults() []FaultName { return []FaultName{FaultTamper, FaultBadFrame, FaultXDomTouch} }

func (f FaultName) defenseFault() bool {
	return f == FaultTamper || f == FaultBadFrame || f == FaultXDomTouch
}

// ClusterWorkload is the multi-instance workload name: N replicated
// members instead of one instance. It only pairs with the cluster
// fault kinds and is opted into via -workloads, never by default.
const ClusterWorkload = "cluster"

// clusterFaults lists the instance-level fault kinds.
func clusterFaults() []FaultName { return []FaultName{FaultInstanceKill, FaultPartition} }

func (f FaultName) clusterFault() bool {
	return f == FaultInstanceKill || f == FaultPartition
}

// DefaultFaults is the default campaign slice: the paper's two fail-stop
// modes, which exercise the full detect→reboot→replay machinery.
func DefaultFaults() []FaultName { return []FaultName{FaultCrash, FaultHang} }

// rebootInducing reports whether a fault kind is expected to reboot the
// target component (directly or via a proactive rejuvenation).
func (f FaultName) rebootInducing() bool {
	return f == FaultCrash || f == FaultHang || f == FaultLeak || f == FaultAging
}

// AllWorkloads lists the paper's four applications in §VI order.
func AllWorkloads() []string { return []string{"sqlite", "nginx", "redis", "echo"} }

// Campaign configuration short names and their bench equivalents. The
// campaign only runs message-passing configurations: vanilla has no
// component boundary to recover behind.
var configNames = map[string]bench.ConfigName{
	"noop": bench.Noop,
	"das":  bench.DaS,
	"fsm":  bench.FSm,
	"netm": bench.NETm,
}

// AllConfigs lists the message-passing configurations in paper order.
func AllConfigs() []string { return []string{"noop", "das", "fsm", "netm"} }

// DefaultConfigs is the default campaign slice: round-robin and
// dependency-aware scheduling, unmerged.
func DefaultConfigs() []string { return []string{"noop", "das"} }

func coreConfigFor(name string) (core.Config, error) {
	bn, ok := configNames[name]
	if !ok {
		return core.Config{}, fmt.Errorf("campaign: unknown config %q (valid: %s)",
			name, strings.Join(AllConfigs(), ", "))
	}
	return bench.CoreConfig(bn), nil
}

// Cell is one point of the injection space: inject Fault into
// Component.Function while Workload runs on Config.
type Cell struct {
	Workload  string    `json:"workload"`
	Config    string    `json:"config"`
	Component string    `json:"component"`
	Function  string    `json:"function"` // "*" = any exported function
	Fault     FaultName `json:"fault"`
	// Expected marks an expected-unrecoverable cell: a reboot-inducing
	// fault in VIRTIO, whose state is shared with the host and which the
	// paper documents as unrebootable. Whatever the outcome, the cell is
	// classified as expected-unrecoverable, never as a regression.
	Expected bool `json:"expected_unrecoverable,omitempty"`
}

// ID is the cell's stable identifier, usable with the -trial flag.
func (c Cell) ID() string {
	return fmt.Sprintf("%s/%s/%s/%s/%s", c.Workload, c.Config, c.Component, c.Function, c.Fault)
}

// SpaceOptions selects a slice of the injection space. Zero-value fields
// select the default campaign: every component of every workload profile
// × {crash, hang} × all four workloads × {noop, das}, fault site "*".
type SpaceOptions struct {
	Workloads  []string
	Configs    []string
	Components []string
	Faults     []FaultName
	// Functions selects fault-site granularity: "any" (default) arms one
	// wildcard fault per component; "each" produces one cell per exported
	// function of the component (a much larger space in which faults on
	// cold functions may legitimately never trigger).
	Functions string
}

func (o SpaceOptions) fill() SpaceOptions {
	if len(o.Workloads) == 0 {
		o.Workloads = AllWorkloads()
	}
	if len(o.Configs) == 0 {
		o.Configs = DefaultConfigs()
	}
	if len(o.Faults) == 0 {
		o.Faults = DefaultFaults()
	}
	if o.Functions == "" {
		o.Functions = "any"
	}
	return o
}

// profileFor returns the instance profile a workload's application
// selects (paper Table I: which components are linked per app).
func profileFor(workload string, cc core.Config) (unikernel.Config, error) {
	d, err := driverFor(workload)
	if err != nil {
		return unikernel.Config{}, err
	}
	return d.profile(unikernel.Config{Core: cc}), nil
}

// EnumerateSpace builds the campaign's cell list from the component
// registries: for each workload × config it assembles a throwaway
// instance with that workload's profile and reads the injection points
// (components, exported functions, unrebootable flags) off the runtime —
// nothing is hard-coded, so a newly registered component automatically
// joins the campaign.
func EnumerateSpace(o SpaceOptions) ([]Cell, error) {
	o = o.fill()
	for _, f := range o.Faults {
		if !validFault(f) {
			return nil, fmt.Errorf("campaign: unknown fault %q (valid: %s)", f, faultList())
		}
	}
	var cells []Cell
	seenComponents := map[string]bool{}
	for _, w := range o.Workloads {
		if w == ClusterWorkload {
			// Multi-instance cells: the component dimension selects the
			// victim member, the fault dimension the instance-level fault.
			// When the selected faults include no cluster fault (the
			// default slice is crash/hang), both cluster kinds run.
			sel := make([]FaultName, 0, 2)
			for _, f := range o.Faults {
				if f.clusterFault() {
					sel = append(sel, f)
				}
			}
			if len(sel) == 0 {
				sel = clusterFaults()
			}
			for _, cfg := range o.Configs {
				if _, err := coreConfigFor(cfg); err != nil {
					return nil, err
				}
				for v := 0; v < clusterNodes; v++ {
					comp := fmt.Sprintf("node%d", v)
					seenComponents[comp] = true
					if len(o.Components) > 0 && !containsString(o.Components, comp) {
						continue
					}
					for _, fault := range sel {
						cells = append(cells, Cell{
							Workload: w, Config: cfg, Component: comp,
							Function: core.AnyFunction, Fault: fault,
						})
					}
				}
			}
			continue
		}
		for _, cfg := range o.Configs {
			cc, err := coreConfigFor(cfg)
			if err != nil {
				return nil, err
			}
			ucfg, err := profileFor(w, cc)
			if err != nil {
				return nil, err
			}
			inst, err := unikernel.New(ucfg)
			if err != nil {
				return nil, fmt.Errorf("campaign: enumerate %s/%s: %w", w, cfg, err)
			}
			points := inst.Runtime().InjectionPoints()
			byComp := map[string][]core.InjectionPoint{}
			var order []string
			for _, p := range points {
				if len(byComp[p.Component]) == 0 {
					order = append(order, p.Component)
				}
				byComp[p.Component] = append(byComp[p.Component], p)
				seenComponents[p.Component] = true
			}
			sort.Strings(order)
			for _, comp := range order {
				if len(o.Components) > 0 && !containsString(o.Components, comp) {
					continue
				}
				unrebootable := byComp[comp][0].Unrebootable
				for _, fault := range o.Faults {
					if fault.clusterFault() {
						continue // instance-level kinds only pair with the cluster workload
					}
					if fault == FaultSessionCrash {
						// Session cells pair with the many-connection redis
						// workload and enumerate one cell per
						// session-attributable export of the component.
						if w != "redis" {
							continue
						}
						var fns []string
						for _, p := range byComp[comp] {
							if p.Sessionful {
								fns = append(fns, p.Fn)
							}
						}
						sort.Strings(fns)
						for _, fn := range fns {
							cells = append(cells, Cell{
								Workload: w, Config: cfg, Component: comp,
								Function: fn, Fault: FaultSessionCrash,
							})
						}
						continue
					}
					if fault.defenseFault() {
						// Attack cells have restricted pairings: tamper needs a
						// victim with an image history to roll back through,
						// badframe strikes the 9P frame's consumer, and a
						// cross-domain touch needs a victim arena (any component
						// with a heap — same as wildwrite). All run at wildcard
						// granularity: the attack is not tied to a fault site.
						switch fault {
						case FaultTamper:
							if !byComp[comp][0].Checkpointed {
								continue
							}
						case FaultBadFrame:
							if comp != "9pfs" {
								continue
							}
						}
						cells = append(cells, Cell{
							Workload: w, Config: cfg, Component: comp,
							Function: core.AnyFunction, Fault: fault,
						})
						continue
					}
					fns := []string{core.AnyFunction}
					if o.Functions == "each" && fault != FaultLeak && fault != FaultWildWrite && fault != FaultAging {
						fns = fns[:0]
						for _, p := range byComp[comp] {
							fns = append(fns, p.Fn)
						}
						sort.Strings(fns)
					}
					for _, fn := range fns {
						cells = append(cells, Cell{
							Workload: w, Config: cfg, Component: comp,
							Function: fn, Fault: fault,
							Expected: unrebootable && fault.rebootInducing(),
						})
					}
				}
			}
		}
	}
	if len(o.Components) > 0 {
		for _, c := range o.Components {
			if !seenComponents[c] {
				known := make([]string, 0, len(seenComponents))
				for k := range seenComponents {
					known = append(known, k)
				}
				sort.Strings(known)
				return nil, fmt.Errorf("campaign: component %q not linked in any selected workload (linked: %s)",
					c, strings.Join(known, ", "))
			}
		}
	}
	return cells, nil
}

func validFault(f FaultName) bool {
	for _, v := range AllFaults() {
		if f == v {
			return true
		}
	}
	return false
}

func faultList() string {
	var names []string
	for _, f := range AllFaults() {
		names = append(names, string(f))
	}
	return strings.Join(names, ", ")
}

func containsString(haystack []string, needle string) bool {
	for _, s := range haystack {
		if s == needle {
			return true
		}
	}
	return false
}
