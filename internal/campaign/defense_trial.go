package campaign

import (
	"fmt"
	"strings"
	"time"

	"vampos/internal/ckpt"
	"vampos/internal/core"
	"vampos/internal/defense"
	"vampos/internal/faults"
	"vampos/internal/mem"
	"vampos/internal/trace"
	"vampos/internal/unikernel"
)

// Defense trial shape. The seal cadence is tightened below the checkpoint
// cadence so a tamper is caught within a handful of calls and at most one
// image postdates the watermark; the detect wait bounds how long the trial
// waits for the attack-induced reboot before judging it absent.
const (
	defenseSealEvery  = 4
	defenseCkptEvery  = 8
	defenseHistory    = 4
	defenseDetectWait = 2 * time.Second
)

// runDefenseTrial executes one attack cell with the defense pipeline
// armed: deliver the attack (arena tamper, corrupted host frame, or PKRU
// misuse), keep the workload running while detection and taint-aware
// recovery happen underneath, force a second reboot of the attacked
// component so consecutive arena-layout fingerprints can be compared, and
// judge with the defense oracles.
func runDefenseTrial(cell Cell, opts Options) (res CellResult) {
	res = CellResult{Cell: cell, TrialID: cell.ID()}
	defer func() {
		if r := recover(); r != nil {
			res.Verdict = VerdictFail
			res.Detail = fmt.Sprintf("trial panicked: %v", r)
		}
	}()
	seed := trialSeed(opts.Seed, cell.ID())
	t := &trial{cell: cell}

	cc, err := coreConfigFor(cell.Config)
	if err != nil {
		return failResult(res, err)
	}
	cc.HangThreshold = trialHangThreshold
	cc.Shards = opts.Shards
	cc.WatchdogPeriod = trialWatchdogPeriod
	cc.MaxVirtualTime = trialMaxVirtual
	// The taint-aware rollback needs an image history to land on, and the
	// divergence detector needs replay return checking; both are part of
	// the configuration under test regardless of the campaign's flags.
	t.ckpt = opts.Ckpt
	if !t.ckpt.Enabled() {
		t.ckpt = ckpt.Policy{EveryCalls: defenseCkptEvery}
	}
	cc.Ckpt = t.ckpt
	cc.ReplayRetCheck = true
	cc.Defense = defense.Policy{
		Enabled:        true,
		Rerandomize:    true,
		RebootOnFault:  cell.Fault == FaultXDomTouch,
		SealEveryCalls: defenseSealEvery,
		HistoryDepth:   defenseHistory,
		Seed:           seed,
	}

	d, err := driverFor(cell.Workload)
	if err != nil {
		return failResult(res, err)
	}
	t.profile = d.profile(unikernel.Config{Core: cc})
	inst, err := unikernel.New(t.profile)
	if err != nil {
		return failResult(res, err)
	}
	if cell.Fault == FaultXDomTouch {
		if err := inst.Runtime().Register(faults.NewSaboteur()); err != nil {
			return failResult(res, err)
		}
	}
	if err := d.setupHost(inst); err != nil {
		return failResult(res, err)
	}
	rec := inst.NewTracer("campaign/"+cell.ID(), trace.WithCapacity(1<<14))

	var phaseErr error
	v0 := time.Duration(0)
	runErr := inst.Run(func(s *unikernel.Sys) {
		defer s.Stop()
		v0 = s.Elapsed()
		t.deadlineV = s.Elapsed() + trialDeadline
		if phaseErr = s.StartApp(d.app()); phaseErr != nil {
			phaseErr = fmt.Errorf("app start: %w", phaseErr)
			return
		}
		if phaseErr = d.warm(s, t); phaseErr != nil {
			phaseErr = fmt.Errorf("warm phase: %w", phaseErr)
			return
		}
		if phaseErr = t.injectAttack(s, inst); phaseErr != nil {
			phaseErr = fmt.Errorf("attack: %w", phaseErr)
			return
		}
		d.run(s, t)
		if cell.Fault == FaultTamper || cell.Fault == FaultBadFrame {
			// The fingerprint oracle needs two incarnations to compare, so
			// once the attack-induced reboot has landed, rejuvenate the
			// attacked component proactively for the second sample.
			if t.waitReboots(s, inst, 1) {
				t.defRerandErr = s.Reboot(cell.Component)
			} else {
				t.defRerandErr = fmt.Errorf("attack-induced reboot never happened")
			}
		}
		s.Sleep(trialSettle)
		t.verifyErr = d.verify(s, t)
		t.finished = true
	})
	res.Virtual = inst.Runtime().Clock().Elapsed() - v0
	if runErr != nil && phaseErr == nil {
		phaseErr = runErr
	}
	events := rec.Snapshot()
	res.Reboots = len(inst.Runtime().Reboots())
	res.ClientErrs = t.errs
	res.Verdict, res.Oracles, res.Detail = judgeDefense(t, inst, events, phaseErr)
	res.recorder = rec
	return res
}

// injectAttack delivers the cell's attack from the controller thread.
func (t *trial) injectAttack(s *unikernel.Sys, inst *unikernel.Instance) error {
	rt := inst.Runtime()
	comp := t.cell.Component
	switch t.cell.Fault {
	case FaultTamper:
		// Host-side byte flip inside the component's private arena: never
		// legitimate mid-run, so the next seal verification must break.
		heap, ok := rt.ComponentHeap(comp)
		if !ok {
			return fmt.Errorf("no heap for victim %q", comp)
		}
		addr, err := heap.Alloc(32)
		if err != nil {
			return err
		}
		if err := rt.Memory().HostWrite(mem.Addr(addr), []byte{0xDE, 0xAD, 0xBE, 0xEF}); err != nil {
			return err
		}
		t.defInjected = true
		return nil
	case FaultBadFrame:
		// Corrupt the next 9P response in flight, then force a round trip
		// with a probe file. The hardened decoder rejects the frame, the
		// defensive crash reboots 9PFS, and the probe syscalls — like any
		// in-flight call at crash time — must come back clean: every error
		// here counts against the service budget.
		inst.Host().Corrupt9PResponses(1)
		fd, err := s.Open("/defense-probe", unikernel.OCreate|unikernel.OWronly|unikernel.OTrunc)
		if err != nil {
			t.errs++
		} else {
			if _, err := s.Write(fd, []byte("probe")); err != nil {
				t.errs++
			}
			if err := s.Fsync(fd); err != nil {
				t.errs++
			}
			if err := s.Close(fd); err != nil {
				t.errs++
			}
		}
		t.defInjected = true
		return nil
	case FaultXDomTouch:
		// Two PKRU-misuse strikes from the saboteur into the victim's
		// domain. Each must be confined (EFAULT, witness intact) and — with
		// RebootOnFault armed — answered by a reboot of the offender, giving
		// the fingerprint oracle its two saboteur incarnations.
		heap, ok := rt.ComponentHeap(comp)
		if !ok {
			return fmt.Errorf("no heap for victim %q", comp)
		}
		victimAddr, err := heap.Alloc(64)
		if err != nil {
			return err
		}
		// The witness is a read snapshot, not a host write: under defense a
		// host write into the victim's sealed arena would itself be detected
		// as tampering and reboot the victim, muddying the verdict.
		memObj := rt.Memory()
		witness := make([]byte, 16)
		if err := memObj.HostRead(mem.Addr(victimAddr), witness); err != nil {
			return err
		}
		faults0 := memObj.Faults()
		strike := func() {
			_, werr := s.Ctx().Call("saboteur", "wild_write", victimAddr, 0xFF)
			if werr != nil && strings.Contains(werr.Error(), "EFAULT") {
				t.defEFaults++
			} else {
				t.errs++
			}
		}
		strike()
		if !t.waitReboots(s, inst, 1) {
			return fmt.Errorf("no punitive reboot after first strike")
		}
		strike()
		if !t.waitReboots(s, inst, 2) {
			return fmt.Errorf("no punitive reboot after second strike")
		}
		got := make([]byte, len(witness))
		if err := memObj.HostRead(mem.Addr(victimAddr), got); err != nil {
			return err
		}
		t.defIntact = string(got) == string(witness)
		t.defFaultsDelta = memObj.Faults() - faults0
		t.defInjected = true
		return nil
	default:
		return fmt.Errorf("campaign: not an attack fault %q", t.cell.Fault)
	}
}

// waitReboots sweeps until the runtime has recorded at least n reboots,
// bounded by the detect wait and the trial deadline. The sweeps keep
// quiescent points coming for components off the workload's hot path.
func (t *trial) waitReboots(s *unikernel.Sys, inst *unikernel.Instance, n int) bool {
	rt := inst.Runtime()
	deadline := s.Elapsed() + defenseDetectWait
	for len(rt.Reboots()) < n {
		if s.Elapsed() > deadline || t.pastDeadline(s) {
			return false
		}
		t.sweep(s)
		s.Sleep(5 * time.Millisecond)
	}
	return true
}

// judgeDefense runs the defense oracles: the attack was detected and
// answered, recovery rolled back past the taint watermark, the blast
// radius stayed at the attacked component, consecutive incarnations got
// distinct arena layouts, and the application — checked against its host
// shadow — came through consistent.
func judgeDefense(t *trial, inst *unikernel.Instance, events []trace.Event, phaseErr error) (Verdict, []OracleResult, string) {
	cell := t.cell
	rt := inst.Runtime()
	st := rt.Stats()
	reboots := rt.Reboots()
	targetGroup, _ := rt.GroupOf(cell.Component)
	// The component that should pay with reboots: the attacked one, or —
	// for the cross-domain touch — the offender, never the victim.
	attacker := cell.Component
	if cell.Fault == FaultXDomTouch {
		attacker = "saboteur"
	}
	attackerGroup, _ := rt.GroupOf(attacker)

	var oracles []OracleResult
	oc := func(name string, ok bool, format string, args ...any) {
		r := OracleResult{Name: name, OK: ok}
		if !ok {
			r.Detail = fmt.Sprintf(format, args...)
		}
		oracles = append(oracles, r)
	}

	switch cell.Fault {
	case FaultTamper:
		oc("attack-triggered", t.defInjected && st.TamperDetections >= 1,
			"injected=%v tamperDetections=%d (want a seal break)", t.defInjected, st.TamperDetections)
	case FaultBadFrame:
		crashed := false
		for _, r := range reboots {
			if r.Group == targetGroup && strings.Contains(r.Reason, "corrupted host frame") {
				crashed = true
			}
		}
		oc("attack-triggered", t.defInjected && inst.Host().ResponsesCorrupted >= 1 && crashed,
			"injected=%v corrupted=%d defensiveCrash=%v (reboots=%+v)",
			t.defInjected, inst.Host().ResponsesCorrupted, crashed, rebootReasons(reboots))
	case FaultXDomTouch:
		oc("attack-triggered", t.defInjected && t.defEFaults == 2 && st.PKRUBreaches >= 2,
			"injected=%v efaults=%d breaches=%d (want both strikes confined and flagged)",
			t.defInjected, t.defEFaults, st.PKRUBreaches)
	}

	if cell.Fault == FaultTamper {
		// Taint-aware rollback: the tamper reboot must carry a watermark
		// and must have landed on an image strictly predating it.
		rolled, detail := false, "no reboot of the tainted group carries a watermark"
		for _, r := range reboots {
			if r.Group == targetGroup && r.TaintWatermark > 0 {
				rolled = r.RestoredEpochSeq < r.TaintWatermark
				detail = fmt.Sprintf("restored epoch seq %d vs watermark %d (quarantined %d)",
					r.RestoredEpochSeq, r.TaintWatermark, r.QuarantinedImages)
				break
			}
		}
		oc("taint-rollback", rolled && st.TaintRollbacks >= 1,
			"%s; taintRollbacks=%d", detail, st.TaintRollbacks)
	}

	// Containment: exactly the attack-induced reboot plus the proactive
	// fingerprint one (or the two punitive ones), all of the attacker's
	// group, every restore clean — and for the cross-domain touch the
	// victim must never have rebooted at all.
	stray := strayReboots(reboots, attackerGroup)
	contained := len(reboots) == 2 && len(stray) == 0 && st.FailedRestores == 0
	detail := fmt.Sprintf("reboots=%d stray=%v failedRestores=%d (want exactly 2 of group %q)",
		len(reboots), stray, st.FailedRestores, attackerGroup)
	if cell.Fault == FaultXDomTouch {
		vs, _ := rt.ComponentStats(cell.Component)
		contained = contained && vs.Reboots == 0
		detail += fmt.Sprintf("; victim %q reboots=%d (want 0)", cell.Component, vs.Reboots)
		oc("confinement", t.defIntact && t.defFaultsDelta >= 2,
			"intact=%v protectionFaults=%d (want witness unharmed, both strikes faulted)",
			t.defIntact, t.defFaultsDelta)
	}
	oc("containment", contained, "%s", detail)

	// Re-randomize: each of the attacker's incarnations must expose a
	// fresh, nonzero arena-layout fingerprint.
	fps := memberFingerprints(reboots, attackerGroup, attacker)
	rerand := len(fps) >= 2 && t.defRerandErr == nil
	for i, fp := range fps {
		if fp == 0 || (i > 0 && fp == fps[i-1]) {
			rerand = false
		}
	}
	oc("re-randomize", rerand, "fingerprints=%v rerandErr=%v (want >= 2, nonzero, consecutive distinct)",
		fps, t.defRerandErr)

	oc("service", t.errs <= serviceBudget(cell),
		"%d client errors exceed budget %d", t.errs, serviceBudget(cell))

	oc("checkpoint", st.CheckpointErrs == 0, "checkpointErrs=%d", st.CheckpointErrs)

	invOK := phaseErr == nil && t.finished && t.verifyErr == nil && t.corrupt == 0
	oc("invariants", invOK, "phaseErr=%v finished=%v verify=%v corrupt=%d",
		phaseErr, t.finished, t.verifyErr, t.corrupt)

	oc("trace-complete", traceComplete(cell, events, len(reboots)) == nil,
		"%v", traceComplete(cell, events, len(reboots)))

	allOK := true
	var failed []string
	for _, o := range oracles {
		if !o.OK {
			allOK = false
			failed = append(failed, o.Name)
		}
	}
	out := ""
	if phaseErr != nil {
		out = phaseErr.Error()
	}
	if allOK {
		return VerdictPass, oracles, out
	}
	if out == "" {
		out = "oracle failures: " + strings.Join(failed, ", ")
	}
	return VerdictFail, oracles, out
}

// memberFingerprints extracts one component's layout fingerprint from
// each reboot record of its group, in reboot order.
func memberFingerprints(reboots []core.RebootRecord, group, member string) []uint64 {
	var fps []uint64
	for _, r := range reboots {
		if r.Group != group {
			continue
		}
		for i, c := range r.Components {
			if c == member && i < len(r.LayoutFingerprints) {
				fps = append(fps, r.LayoutFingerprints[i])
			}
		}
	}
	return fps
}

// rebootReasons summarises reboot records for oracle detail strings.
func rebootReasons(recs []core.RebootRecord) []string {
	var out []string
	for _, r := range recs {
		out = append(out, r.Group+": "+r.Reason)
	}
	return out
}
