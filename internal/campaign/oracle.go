package campaign

import (
	"fmt"
	"strings"
	"time"

	"vampos/internal/core"
	"vampos/internal/trace"
	"vampos/internal/unikernel"
)

// Verdict classifies one trial.
type Verdict string

const (
	// VerdictPass: every oracle held.
	VerdictPass Verdict = "pass"
	// VerdictFail: at least one oracle was violated on a cell that was
	// expected to recover — a regression.
	VerdictFail Verdict = "fail"
	// VerdictExpected: the cell targets a documented-unrebootable
	// component (VIRTIO) with a reboot-inducing fault; whatever happened
	// is recorded but never counted as a regression.
	VerdictExpected Verdict = "expected-unrecoverable"
	// VerdictNotTriggered: the armed fault never fired — the fault site
	// was not invoked by this workload. Informative for per-function
	// campaigns; a regression only for wildcard fault sites, which the
	// workload drivers guarantee to reach.
	VerdictNotTriggered Verdict = "not-triggered"
)

// OracleResult is one recovery oracle's judgement of a trial.
type OracleResult struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// serviceBudget bounds client-visible errors during the tolerant run
// phase. In-process sqlite syscalls are retried transparently by the
// runtime, so crash/hang recovery must be invisible to them; network
// clients legitimately observe resets during the recovery window (the
// paper's Fig. 8 outage) and get a budget plus reconnect.
func serviceBudget(cell Cell) int {
	switch cell.Fault {
	case FaultErrno:
		return 3 // the injected errno surfaces exactly once, plus margin
	case FaultWildWrite, FaultXDomTouch:
		return 0 // a confined stray store must disturb nothing
	}
	if cell.Workload == "sqlite" {
		return 0
	}
	return 20
}

// judge runs every recovery oracle applicable to the cell's fault kind
// and folds them into a verdict.
func judge(t *trial, inst *unikernel.Instance, events []trace.Event, phaseErr error) (Verdict, []OracleResult, string) {
	cell := t.cell
	rt := inst.Runtime()
	st := rt.Stats()
	reboots := rt.Reboots()
	pending := rt.PendingFaults()
	targetGroup, _ := rt.GroupOf(cell.Component)

	var oracles []OracleResult
	oc := func(name string, ok bool, format string, args ...any) {
		r := OracleResult{Name: name, OK: ok}
		if !ok {
			r.Detail = fmt.Sprintf(format, args...)
		}
		oracles = append(oracles, r)
	}

	armed := cell.Fault == FaultCrash || cell.Fault == FaultHang || cell.Fault == FaultErrno
	triggered := true
	if armed {
		triggered = len(pending) == 0 && countKind(events, trace.KindFault) >= 1
		oc("fault-triggered", triggered,
			"fault never fired: pending=%v, fault events=%d", pending, countKind(events, trace.KindFault))
	}

	// Containment: who rebooted, and was restoration clean.
	switch cell.Fault {
	case FaultCrash, FaultHang:
		stray := strayReboots(reboots, targetGroup)
		oc("containment", len(reboots) >= 1 && len(stray) == 0 && st.FailedRestores == 0,
			"reboots=%d stray=%v failedRestores=%d (want only group %q)",
			len(reboots), stray, st.FailedRestores, targetGroup)
	case FaultErrno, FaultWildWrite:
		oc("containment", len(reboots) == 0 && st.Failures == 0 && st.Hangs == 0,
			"transient fault escalated: reboots=%d failures=%d hangs=%d",
			len(reboots), st.Failures, st.Hangs)
	case FaultLeak:
		stray := strayReboots(reboots, targetGroup)
		if cell.Expected {
			// VIRTIO refuses the proactive reboot; nothing must reboot.
			oc("containment", len(reboots) == 0, "unrebootable target still rebooted: %d", len(reboots))
		} else {
			oc("containment", len(reboots) == 1 && len(stray) == 0 && st.FailedRestores == 0,
				"reboots=%d stray=%v failedRestores=%d (want exactly group %q)",
				len(reboots), stray, st.FailedRestores, targetGroup)
		}
	case FaultAging:
		stray := strayReboots(reboots, targetGroup)
		if cell.Expected {
			// The controller must keep retrying-with-backoff, never
			// actually rebooting the unrebootable target.
			oc("containment", len(reboots) == 0, "unrebootable target still rebooted: %d", len(reboots))
		} else {
			oc("containment", len(reboots) >= 1 && len(stray) == 0 && st.FailedRestores == 0,
				"reboots=%d stray=%v failedRestores=%d (want only group %q)",
				len(reboots), stray, st.FailedRestores, targetGroup)
		}
	}

	// Fault-specific recovery oracle.
	switch cell.Fault {
	case FaultCrash, FaultHang:
		recoveries := trace.Recoveries(events)
		bound := 50 * time.Millisecond
		if cell.Fault == FaultHang {
			bound = trialHangThreshold + 3*trialWatchdogPeriod
		}
		ok := len(recoveries) == 1 &&
			recoveries[0].Detected > 0 &&
			recoveries[0].Detected-recoveries[0].Fault <= bound
		detail := fmt.Sprintf("recovery chains=%d", len(recoveries))
		if len(recoveries) == 1 {
			detail = fmt.Sprintf("detected %v after fault (bound %v)",
				recoveries[0].Detected-recoveries[0].Fault, bound)
		}
		oc("detection-latency", ok, "%s", detail)
	case FaultLeak:
		if cell.Expected {
			oc("rejuvenation", t.leakDone && t.leakRebootErr != nil,
				"proactive reboot of unrebootable %s unexpectedly succeeded", cell.Component)
		} else {
			ok := t.leakDone && t.leakRebootErr == nil &&
				t.leakAfter.AllocatedBytes < t.leakBefore.AllocatedBytes
			oc("rejuvenation", ok, "reboot err=%v, heap %d -> %d bytes",
				t.leakRebootErr, t.leakBefore.AllocatedBytes, t.leakAfter.AllocatedBytes)
		}
	case FaultWildWrite:
		oc("confinement", t.wildEFault && t.wildIntact && t.wildFaultsDelta > 0,
			"efault=%v intact=%v protectionFaults=%d", t.wildEFault, t.wildIntact, t.wildFaultsDelta)
	case FaultAging:
		// Adaptive rejuvenation: the reboot must be sensor-triggered (the
		// aging monitor names the cause, every reboot record carries
		// reason "rejuvenation" — no wall timer involved), the leak must
		// be reclaimed, and fragmentation must stay bounded afterwards.
		sensorOnly := true
		for _, r := range reboots {
			if r.Reason != "rejuvenation" {
				sensorOnly = false
			}
		}
		if cell.Expected {
			ok := t.agingDone && t.agingStatsOK &&
				t.agingStats.Rejuvenations == 0 && t.agingStats.Failures > 0
			oc("rejuvenation", ok,
				"done=%v statsOK=%v rejuvenations=%d failures=%d (want refused attempts only)",
				t.agingDone, t.agingStatsOK, t.agingStats.Rejuvenations, t.agingStats.Failures)
		} else {
			ok := t.agingDone && t.agingStatsOK &&
				t.agingStats.Rejuvenations > 0 &&
				t.agingStats.LastCause == "leak-slope" &&
				sensorOnly &&
				t.agingAfter.AllocatedBytes < t.agingBefore.AllocatedBytes &&
				t.agingAfter.Fragmentation <= 0.5
			oc("rejuvenation", ok,
				"done=%v statsOK=%v rejuvenations=%d cause=%q sensorOnly=%v heap %d -> %d bytes frag %.2f",
				t.agingDone, t.agingStatsOK, t.agingStats.Rejuvenations, t.agingStats.LastCause,
				sensorOnly, t.agingBefore.AllocatedBytes, t.agingAfter.AllocatedBytes,
				t.agingAfter.Fragmentation)
		}
	}

	oc("service", t.errs <= serviceBudget(cell),
		"%d client errors exceed budget %d", t.errs, serviceBudget(cell))

	invOK := phaseErr == nil && t.finished && t.verifyErr == nil && t.corrupt == 0
	oc("invariants", invOK, "phaseErr=%v finished=%v verify=%v corrupt=%d",
		phaseErr, t.finished, t.verifyErr, t.corrupt)

	// Checkpoint oracle (armed only when incremental checkpointing is
	// on): the checkpoint machinery must never fail a capture, and when
	// the faulted component had checkpointed before its reboot, recovery
	// must have restored from that image — the post-checkpoint recovery
	// whose application-level correctness the invariants oracle just
	// validated against the host shadow.
	if t.ckpt.Enabled() {
		ckptOK := st.CheckpointErrs == 0
		restored := true
		if cs, eligible := rt.CheckpointStats(cell.Component); eligible &&
			cs.CheckpointCount > 0 && !cell.Expected && len(reboots) > 0 {
			restored = false
			for _, r := range reboots {
				if r.Group == targetGroup && r.RestoredPages > 0 {
					restored = true
					break
				}
			}
		}
		oc("checkpoint", ckptOK && restored,
			"checkpointErrs=%d restoredFromImage=%v", st.CheckpointErrs, restored)
	}

	oc("trace-complete", traceComplete(cell, events, len(reboots)) == nil,
		"%v", traceComplete(cell, events, len(reboots)))

	// Fold into a verdict.
	allOK := true
	var failed []string
	for _, o := range oracles {
		if !o.OK {
			allOK = false
			failed = append(failed, o.Name)
		}
	}
	detail := ""
	if phaseErr != nil {
		detail = phaseErr.Error()
	}
	switch {
	case cell.Expected:
		if allOK {
			detail = "expected-unrecoverable cell incidentally satisfied every oracle"
		} else if detail == "" {
			detail = "oracle failures (expected): " + strings.Join(failed, ", ")
		}
		return VerdictExpected, oracles, detail
	case allOK:
		return VerdictPass, oracles, detail
	case armed && !triggered && onlyTriggerFailed(oracles):
		return VerdictNotTriggered, oracles, "fault site not reached by this workload"
	default:
		if detail == "" {
			detail = "oracle failures: " + strings.Join(failed, ", ")
		}
		return VerdictFail, oracles, detail
	}
}

// onlyTriggerFailed reports whether the failing oracles are exactly the
// ones that vacuously fail when a fault never fires (no fault event, no
// reboot, no recovery chain) — the signature of a fault site the
// workload never reached. Service and invariant violations still fail
// the trial: an unreached site must not degrade the application.
func onlyTriggerFailed(oracles []OracleResult) bool {
	for _, o := range oracles {
		if !o.OK && o.Name != "fault-triggered" && o.Name != "containment" &&
			o.Name != "detection-latency" && o.Name != "trace-complete" {
			return false
		}
	}
	return true
}

// traceComplete checks that the flight-recorder snapshot is structurally
// valid and tells the same story as the runtime's own records: every
// runtime reboot has a trace span, and reboot-inducing faults show a
// causally complete fault → detect → reboot chain with phase tiling.
func traceComplete(cell Cell, events []trace.Event, runtimeReboots int) error {
	if err := trace.Validate(events); err != nil {
		return err
	}
	timelines := trace.RebootTimelines(events)
	if len(timelines) != runtimeReboots {
		return fmt.Errorf("trace has %d reboot spans, runtime recorded %d", len(timelines), runtimeReboots)
	}
	if cell.Fault == FaultCrash || cell.Fault == FaultHang {
		recoveries := trace.Recoveries(events)
		if len(recoveries) != 1 {
			return fmt.Errorf("want exactly one recovery chain, trace has %d", len(recoveries))
		}
		r := recoveries[0]
		if r.Reboot == nil {
			return fmt.Errorf("recovery chain has no reboot span")
		}
		if r.Detected == 0 {
			return fmt.Errorf("recovery chain has no detection instant")
		}
		if cell.Fault == FaultCrash && r.Crash == 0 {
			return fmt.Errorf("crash recovery chain has no crash instant")
		}
		if len(r.Reboot.Phases) == 0 {
			return fmt.Errorf("reboot span has no lifecycle phases")
		}
		var sum time.Duration
		for _, d := range r.Reboot.Phases {
			if d < 0 {
				return fmt.Errorf("negative phase duration %v", d)
			}
			sum += d
		}
		if sum > r.Reboot.Virtual()+time.Millisecond {
			return fmt.Errorf("phases (%v) overflow the reboot span (%v)", sum, r.Reboot.Virtual())
		}
	}
	return nil
}

func countKind(events []trace.Event, kind trace.Kind) int {
	n := 0
	for _, e := range events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// strayReboots lists reboot-record groups other than the expected one.
func strayReboots(recs []core.RebootRecord, want string) []string {
	var stray []string
	for _, r := range recs {
		if r.Group != want {
			stray = append(stray, r.Group)
		}
	}
	return stray
}
