// Package campaign is a SWIFI-style fault-injection campaign engine for
// the VampOS model: it enumerates the injection space straight off the
// component registries (component × fault site × fault kind × workload ×
// configuration), runs every cell as an isolated unikernel instance on a
// worker pool, judges each trial with recovery oracles (containment,
// transparent retry, application invariants, detection latency, trace
// completeness), and reports a recovery matrix. It generalises the
// paper's §VII single-fault experiments (the 9PFS crash of Fig. 8) to
// the whole component surface.
//
// Trials are deterministic: the per-trial seed derives from the
// campaign seed and the cell ID, the simulation runs on a virtual
// clock, and instances share no state — so any cell reproduces in
// isolation, and the matrix is identical whatever -parallel is.
package campaign

import (
	"fmt"
	"runtime"
	"sync"

	"vampos/internal/aging"
	"vampos/internal/ckpt"
)

// Options configures one campaign run.
type Options struct {
	Space SpaceOptions
	// Seed is the campaign seed every per-trial seed derives from.
	Seed int64
	// Parallel is the worker-pool size; 0 means GOMAXPROCS.
	Parallel int
	// TraceDir, when set, receives a Chrome trace dump for every failing
	// trial (and for expected-unrecoverable cells whose oracles failed).
	TraceDir string
	// Trials restricts the run to specific cell IDs (see Cell.ID) after
	// enumeration — the reproduce-one-cell knob.
	Trials []string
	// Ckpt, when enabled, turns on incremental quiescent-point
	// checkpointing for every checkpoint-eligible component of every
	// trial instance, and arms the checkpoint recovery oracle.
	Ckpt ckpt.Policy
	// ReplayRetCheck enables the opt-in replay return-divergence check
	// in every trial instance: replayed calls whose results differ from
	// the log fail the restoration with a ReplayDivergenceError.
	ReplayRetCheck bool
	// Aging, when enabled, replaces DefaultAgingPolicy as the adaptive-
	// rejuvenation policy aging cells arm. The leak-slope sensor should
	// stay enabled: the aging oracle attributes the rejuvenation to it.
	Aging aging.Policy
	// Shards sets every trial instance's shard-baton count (core
	// Config.Shards): 0 keeps the legacy single-baton scheduler, any
	// positive count runs the deterministic round engine. Trial outcomes
	// and matrices are byte-identical across shard counts.
	Shards int
}

// Run enumerates the selected injection space and executes it.
func Run(opts Options) (*Matrix, error) {
	cells, err := EnumerateSpace(opts.Space)
	if err != nil {
		return nil, err
	}
	if len(opts.Trials) > 0 {
		var keep []Cell
		byID := make(map[string]Cell, len(cells))
		for _, c := range cells {
			byID[c.ID()] = c
		}
		for _, id := range opts.Trials {
			c, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("campaign: trial %q not in the enumerated space (%d cells; run with -list to see IDs)", id, len(cells))
			}
			keep = append(keep, c)
		}
		cells = keep
	}
	return RunCells(cells, opts)
}

// RunCells executes an explicit cell list on the worker pool. Results
// keep enumeration order regardless of completion order.
func RunCells(cells []Cell, opts Options) (*Matrix, error) {
	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(cells) {
		parallel = len(cells)
	}
	if parallel < 1 {
		parallel = 1
	}
	results := make([]CellResult, len(cells))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = runTrial(cells[i], opts)
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	m := &Matrix{Seed: opts.Seed, Cells: results}
	var dumpErr error
	for i := range m.Cells {
		res := &m.Cells[i]
		needsDump := res.Verdict == VerdictFail ||
			(res.Verdict == VerdictExpected && res.Detail != "" && !allOraclesOK(res.Oracles))
		if needsDump && opts.TraceDir != "" {
			if err := dumpTrace(opts.TraceDir, res); err != nil && dumpErr == nil {
				dumpErr = err
			}
		}
		res.recorder = nil // release trial memory
	}
	if dumpErr != nil {
		return m, fmt.Errorf("campaign: trace dump: %w", dumpErr)
	}
	return m, nil
}

func allOraclesOK(oracles []OracleResult) bool {
	for _, o := range oracles {
		if !o.OK {
			return false
		}
	}
	return true
}
