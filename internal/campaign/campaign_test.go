package campaign

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vampos/internal/ckpt"
)

// smallSpace is a two-cell slice (echo × das × lwip × {crash,hang})
// used by the determinism tests: big enough to exercise injection,
// detection and judging, small enough to run twice in a unit test.
func smallSpace() SpaceOptions {
	return SpaceOptions{
		Workloads:  []string{"echo"},
		Configs:    []string{"das"},
		Components: []string{"lwip"},
		Faults:     []FaultName{FaultCrash, FaultHang},
	}
}

func runSmall(t *testing.T, parallel int, seed int64) *Matrix {
	t.Helper()
	m, err := Run(Options{Space: smallSpace(), Seed: seed, Parallel: parallel})
	if err != nil {
		t.Fatalf("campaign run: %v", err)
	}
	return m
}

func matrixJSON(t *testing.T, m *Matrix) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// TestMatrixParallelInvariant: the matrix must be byte-identical
// whatever the worker-pool size — trials are isolated instances on
// virtual clocks, so scheduling order cannot leak into results.
func TestMatrixParallelInvariant(t *testing.T) {
	serial := runSmall(t, 1, 42)
	parallel := runSmall(t, 4, 42)
	sj, pj := matrixJSON(t, serial), matrixJSON(t, parallel)
	if !bytes.Equal(sj, pj) {
		t.Fatalf("matrix differs between -parallel 1 and -parallel 4:\nserial:   %s\nparallel: %s", sj, pj)
	}
	for _, c := range serial.Cells {
		if c.Verdict != VerdictPass {
			t.Errorf("%s: verdict %s (detail: %s)", c.TrialID, c.Verdict, c.Detail)
		}
	}
	if un := serial.Unexpected(); len(un) != 0 {
		t.Fatalf("unexpected failures: %v", un)
	}
}

// TestTrialReproducesFromSeed: re-running one cell through the -trial
// filter must reproduce the full matrix row, including virtual timings.
func TestTrialReproducesFromSeed(t *testing.T) {
	full := runSmall(t, 2, 7)
	want := full.Cells[0]
	again, err := Run(Options{Space: smallSpace(), Seed: 7, Parallel: 1, Trials: []string{want.TrialID}})
	if err != nil {
		t.Fatalf("re-run trial %s: %v", want.TrialID, err)
	}
	if len(again.Cells) != 1 {
		t.Fatalf("trial filter returned %d cells, want 1", len(again.Cells))
	}
	got := again.Cells[0]
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(want)
	if !bytes.Equal(gj, wj) {
		t.Fatalf("re-run of %s diverged:\nfirst: %s\nagain: %s", want.TrialID, wj, gj)
	}
}

// TestTrialFilterUnknownID: asking for a cell outside the enumerated
// space must fail with a pointer to -list, not run an empty campaign.
func TestTrialFilterUnknownID(t *testing.T) {
	_, err := Run(Options{Space: smallSpace(), Seed: 1, Trials: []string{"echo/das/nosuch/*/crash"}})
	if err == nil || !strings.Contains(err.Error(), "not in the enumerated space") {
		t.Fatalf("want not-in-space error, got %v", err)
	}
}

// TestCheckpointedCampaignSlice: stateful-component crash/hang cells
// must pass with incremental checkpointing (and the replay
// return-divergence check) enabled — post-checkpoint recovery preserves
// the application invariants the drivers verify against their host
// shadow, and the checkpoint oracle confirms recovery restored from the
// checkpoint image.
func TestCheckpointedCampaignSlice(t *testing.T) {
	space := SpaceOptions{
		Workloads:  []string{"sqlite", "echo"},
		Configs:    []string{"das"},
		Components: []string{"vfs", "lwip"},
		Faults:     []FaultName{FaultCrash, FaultHang},
	}
	m, err := Run(Options{
		Space:          space,
		Seed:           11,
		Parallel:       2,
		Ckpt:           ckpt.Policy{EveryCalls: 8},
		ReplayRetCheck: true,
	})
	if err != nil {
		t.Fatalf("campaign run: %v", err)
	}
	if len(m.Cells) == 0 {
		t.Fatal("empty checkpointed slice")
	}
	sawCheckpointOracle := false
	for _, c := range m.Cells {
		if c.Verdict != VerdictPass {
			t.Errorf("%s: verdict %s (detail: %s)", c.TrialID, c.Verdict, c.Detail)
		}
		for _, o := range c.Oracles {
			if o.Name == "checkpoint" {
				sawCheckpointOracle = true
				if !o.OK {
					t.Errorf("%s: checkpoint oracle failed: %s", c.TrialID, o.Detail)
				}
			}
		}
	}
	if !sawCheckpointOracle {
		t.Error("checkpoint oracle never ran despite Ckpt policy enabled")
	}
	if un := m.Unexpected(); len(un) != 0 {
		t.Fatalf("unexpected failures: %v", un)
	}
}

// TestAgingCampaignSlice: aging cells must recover via sensor-triggered
// adaptive rejuvenation — the reboot reason is "rejuvenation" and the
// aging monitor names the sensor cause, not a wall timer — with the
// leak reclaimed and fragmentation bounded, byte-identically whatever
// the worker-pool size.
func TestAgingCampaignSlice(t *testing.T) {
	space := SpaceOptions{
		Workloads:  []string{"echo"},
		Configs:    []string{"das"},
		Components: []string{"lwip"},
		Faults:     []FaultName{FaultAging},
	}
	runAging := func(parallel int) *Matrix {
		t.Helper()
		m, err := Run(Options{Space: space, Seed: 21, Parallel: parallel})
		if err != nil {
			t.Fatalf("campaign run: %v", err)
		}
		return m
	}
	serial := runAging(1)
	parallel := runAging(4)
	sj, pj := matrixJSON(t, serial), matrixJSON(t, parallel)
	if !bytes.Equal(sj, pj) {
		t.Fatalf("aging matrix differs between -parallel 1 and 4:\nserial:   %s\nparallel: %s", sj, pj)
	}
	if len(serial.Cells) == 0 {
		t.Fatal("empty aging slice")
	}
	for _, c := range serial.Cells {
		if c.Verdict != VerdictPass {
			t.Errorf("%s: verdict %s (detail: %s)", c.TrialID, c.Verdict, c.Detail)
		}
		if c.Reboots < 1 {
			t.Errorf("%s: no rejuvenation reboot recorded", c.TrialID)
		}
		sawRejuv := false
		for _, o := range c.Oracles {
			if o.Name == "rejuvenation" {
				sawRejuv = true
				if !o.OK {
					t.Errorf("%s: rejuvenation oracle failed: %s", c.TrialID, o.Detail)
				}
			}
		}
		if !sawRejuv {
			t.Errorf("%s: rejuvenation oracle never ran", c.TrialID)
		}
	}
	if un := serial.Unexpected(); len(un) != 0 {
		t.Fatalf("unexpected failures: %v", un)
	}
}

// TestAgingVirtioExpected: an aging fault on the documented-unrebootable
// VIRTIO component classifies as expected-unrecoverable — the adaptive
// controller keeps being refused (backoff), and nothing reboots.
func TestAgingVirtioExpected(t *testing.T) {
	space := SpaceOptions{
		Workloads:  []string{"echo"},
		Configs:    []string{"das"},
		Components: []string{"virtio"},
		Faults:     []FaultName{FaultAging},
	}
	cells, err := EnumerateSpace(space)
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	if len(cells) != 1 || !cells[0].Expected {
		t.Fatalf("virtio aging cell not marked expected: %+v", cells)
	}
	m, err := RunCells(cells, Options{Seed: 13, Parallel: 1})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	res := m.Cells[0]
	if res.Verdict != VerdictExpected {
		t.Fatalf("verdict = %s, want %s (detail: %s)", res.Verdict, VerdictExpected, res.Detail)
	}
	if res.Reboots != 0 {
		t.Fatalf("unrebootable target rebooted %d times", res.Reboots)
	}
	if un := m.Unexpected(); len(un) != 0 {
		t.Fatalf("expected-unrecoverable aging cell counted as regression: %v", un)
	}
}

// TestVirtioExpectedUnrecoverable: reboot-inducing faults on the
// documented-unrebootable VIRTIO component classify as
// expected-unrecoverable and never count as regressions.
func TestVirtioExpectedUnrecoverable(t *testing.T) {
	space := SpaceOptions{
		Workloads:  []string{"echo"},
		Configs:    []string{"das"},
		Components: []string{"virtio"},
		Faults:     []FaultName{FaultCrash},
	}
	cells, err := EnumerateSpace(space)
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	if len(cells) != 1 || !cells[0].Expected {
		t.Fatalf("virtio crash cell not marked expected: %+v", cells)
	}
	m, err := RunCells(cells, Options{Seed: 3, Parallel: 1})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if v := m.Cells[0].Verdict; v != VerdictExpected {
		t.Fatalf("virtio crash verdict = %s, want %s (detail: %s)", v, VerdictExpected, m.Cells[0].Detail)
	}
	if un := m.Unexpected(); len(un) != 0 {
		t.Fatalf("expected-unrecoverable cell counted as regression: %v", un)
	}
}

// TestNotTriggeredPerFunction: arming a real but never-invoked fault
// site yields not-triggered, which is informative (not a regression)
// for per-function cells.
func TestNotTriggeredPerFunction(t *testing.T) {
	cell := Cell{
		Workload: "sqlite", Config: "das",
		Component: "9pfs", Function: "uk_9pfs_mkdir", Fault: FaultCrash,
	}
	m, err := RunCells([]Cell{cell}, Options{Seed: 5, Parallel: 1})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if v := m.Cells[0].Verdict; v != VerdictNotTriggered {
		t.Fatalf("verdict = %s, want %s (detail: %s)", v, VerdictNotTriggered, m.Cells[0].Detail)
	}
	if un := m.Unexpected(); len(un) != 0 {
		t.Fatalf("per-function not-triggered counted as regression: %v", un)
	}
}

// TestTraceDumpOnFailure: a failing trial must leave a loadable Chrome
// trace in -trace-dir. The cell targets a component absent from the
// echo profile, so injection fails deterministically.
func TestTraceDumpOnFailure(t *testing.T) {
	dir := t.TempDir()
	cell := Cell{
		Workload: "echo", Config: "das",
		Component: "9pfs", Function: "*", Fault: FaultCrash,
	}
	m, err := RunCells([]Cell{cell}, Options{Seed: 9, Parallel: 1, TraceDir: dir})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	res := m.Cells[0]
	if res.Verdict != VerdictFail {
		t.Fatalf("verdict = %s, want fail (detail: %s)", res.Verdict, res.Detail)
	}
	if res.TraceFile == "" {
		t.Fatal("failing trial left no trace file")
	}
	want := filepath.Join(dir, "echo_das_9pfs_*_crash.trace.json")
	if res.TraceFile != want {
		t.Errorf("trace file %q, want %q", res.TraceFile, want)
	}
	raw, err := os.ReadFile(res.TraceFile)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		// Chrome's other accepted shape is a bare event array.
		var arr []map[string]any
		if err2 := json.Unmarshal(raw, &arr); err2 != nil {
			t.Fatalf("trace file is not loadable JSON: %v / %v", err, err2)
		}
		doc.TraceEvents = arr
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace file has no events")
	}
}

// TestTrialSeedStability pins the per-trial seed derivation: changing
// it would silently re-randomise every published matrix.
func TestTrialSeedStability(t *testing.T) {
	a := trialSeed(1, "echo/das/lwip/*/crash")
	b := trialSeed(1, "echo/das/lwip/*/crash")
	if a != b {
		t.Fatalf("trialSeed not deterministic: %d vs %d", a, b)
	}
	if trialSeed(2, "echo/das/lwip/*/crash") == a {
		t.Error("campaign seed does not perturb the trial seed")
	}
	if trialSeed(1, "echo/das/lwip/*/hang") == a {
		t.Error("cell ID does not perturb the trial seed")
	}
}

// TestEnumerateDefaultSpace: the default campaign must cover every
// component of every workload profile under both default configs with
// both default faults — at least the 100 trials the paper-scale
// campaign promises.
func TestEnumerateDefaultSpace(t *testing.T) {
	cells, err := EnumerateSpace(SpaceOptions{})
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	if len(cells) < 100 {
		t.Fatalf("default space has %d cells, want >= 100", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.ID()] {
			t.Fatalf("duplicate cell %s", c.ID())
		}
		seen[c.ID()] = true
		if c.Function != "*" {
			t.Errorf("default space emitted per-function cell %s", c.ID())
		}
	}
}
