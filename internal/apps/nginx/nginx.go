// Package nginx implements the paper's Nginx application: a static-file
// HTTP/1.1 server with keep-alive connections, serving its document root
// from the 9PFS-backed file system (§VI: nine components). The workload
// of Fig. 7 — 40 connections fetching a 180-byte html file — and the
// siege rejuvenation scenario of Table V run against it.
package nginx

import (
	"strconv"
	"strings"

	"vampos/internal/unikernel"
)

// DefaultPort is the HTTP port.
const DefaultPort = 80

// DocRoot is the served directory on the guest file system.
const DocRoot = "/www"

// App is the Nginx application.
type App struct {
	// Port overrides DefaultPort when non-zero.
	Port int
	// Workers is how many acceptor threads run (the paper's workload
	// uses 25 threads).
	Workers int

	// Stats
	Requests    uint64
	Errors      uint64
	Connections uint64
}

// New creates the application with one worker.
func New() *App { return &App{Workers: 1} }

// Name implements unikernel.App.
func (a *App) Name() string { return "nginx" }

// Profile returns the full nine-component instance profile.
func (a *App) Profile(cfg unikernel.Config) unikernel.Config {
	cfg.FS = true
	cfg.Net = true
	cfg.Sysinfo = true
	return cfg
}

// Main implements unikernel.App.
func (a *App) Main(s *unikernel.Sys) error {
	port := a.Port
	if port == 0 {
		port = DefaultPort
	}
	lfd, err := s.Socket()
	if err != nil {
		return err
	}
	if err := s.Bind(lfd, port); err != nil {
		return err
	}
	if err := s.Listen(lfd, 256); err != nil {
		return err
	}
	workers := a.Workers
	if workers <= 0 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		name := "nginx/worker" + strconv.Itoa(w)
		s.Go(name, func(ws *unikernel.Sys) {
			for {
				cfd, err := ws.Accept(lfd)
				if err != nil {
					return
				}
				a.Connections++
				ws.Go(name+"/conn"+strconv.Itoa(cfd), func(cs *unikernel.Sys) {
					a.serveConn(cs, cfd)
				})
			}
		})
	}
	return nil
}

// serveConn handles one keep-alive connection.
func (a *App) serveConn(s *unikernel.Sys, fd int) {
	defer func() { _ = s.Close(fd) }()
	var buf []byte
	for {
		// Accumulate until a full request head is present.
		end := findHeaderEnd(buf)
		for end < 0 {
			data, eof, err := s.Recv(fd, 4096)
			if err != nil || eof {
				return
			}
			buf = append(buf, data...)
			end = findHeaderEnd(buf)
		}
		head := string(buf[:end])
		buf = buf[end+4:]
		keepAlive, ok := a.serveRequest(s, fd, head)
		if !ok || !keepAlive {
			return
		}
	}
}

func findHeaderEnd(p []byte) int {
	for i := 0; i+3 < len(p); i++ {
		if p[i] == '\r' && p[i+1] == '\n' && p[i+2] == '\r' && p[i+3] == '\n' {
			return i
		}
	}
	return -1
}

// serveRequest answers one parsed request head; reports keep-alive and
// transport health.
func (a *App) serveRequest(s *unikernel.Sys, fd int, head string) (keepAlive, ok bool) {
	lines := strings.Split(head, "\r\n")
	if len(lines) == 0 {
		return false, false
	}
	fields := strings.Fields(lines[0])
	if len(fields) != 3 {
		a.Errors++
		return false, a.respond(s, fd, 400, "Bad Request", []byte("bad request\n"), false)
	}
	method, target, proto := fields[0], fields[1], fields[2]
	keepAlive = proto == "HTTP/1.1"
	for _, h := range lines[1:] {
		hl := strings.ToLower(h)
		if strings.HasPrefix(hl, "connection:") {
			v := strings.TrimSpace(hl[len("connection:"):])
			keepAlive = v != "close"
		}
	}
	if method != "GET" && method != "HEAD" {
		a.Errors++
		return keepAlive, a.respond(s, fd, 405, "Method Not Allowed", []byte("only GET\n"), keepAlive)
	}
	if i := strings.IndexByte(target, '?'); i >= 0 {
		target = target[:i]
	}
	if target == "/" {
		target = "/index.html"
	}
	if strings.Contains(target, "..") {
		a.Errors++
		return keepAlive, a.respond(s, fd, 403, "Forbidden", []byte("forbidden\n"), keepAlive)
	}
	path := DocRoot + target
	ffd, err := s.Open(path, unikernel.ORdonly)
	if err != nil {
		a.Errors++
		return keepAlive, a.respond(s, fd, 404, "Not Found", []byte("not found\n"), keepAlive)
	}
	var body []byte
	for {
		data, eof, err := s.ReadNB(ffd, 1<<16)
		if err != nil {
			_ = s.Close(ffd)
			a.Errors++
			return keepAlive, a.respond(s, fd, 500, "Internal Server Error", []byte("io error\n"), false)
		}
		body = append(body, data...)
		if eof || len(data) == 0 {
			break
		}
	}
	_ = s.Close(ffd)
	if method == "HEAD" {
		body = nil
	}
	a.Requests++
	return keepAlive, a.respond(s, fd, 200, "OK", body, keepAlive)
}

func (a *App) respond(s *unikernel.Sys, fd, code int, status string, body []byte, keepAlive bool) bool {
	conn := "close"
	if keepAlive {
		conn = "keep-alive"
	}
	head := "HTTP/1.1 " + strconv.Itoa(code) + " " + status + "\r\n" +
		"Server: vampos-nginx\r\n" +
		"Content-Length: " + strconv.Itoa(len(body)) + "\r\n" +
		"Connection: " + conn + "\r\n\r\n"
	if _, err := s.Writev(fd, []byte(head), body); err != nil {
		return false
	}
	return true
}

var _ unikernel.App = (*App)(nil)
