package nginx

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"vampos/internal/core"
	"vampos/internal/host"
	"vampos/internal/sched"
	"vampos/internal/unikernel"
)

func withNginx(t *testing.T, coreCfg core.Config, fn func(s *unikernel.Sys, a *App)) {
	t.Helper()
	coreCfg.MaxVirtualTime = time.Hour
	app := New()
	inst, err := unikernel.New(app.Profile(unikernel.Config{Core: coreCfg}))
	if err != nil {
		t.Fatal(err)
	}
	// Document root is provisioned host-side, like a QEMU share.
	if err := inst.Host().FS().WriteFile("/www/index.html", []byte(strings.Repeat("<html>vamp</html>\n", 10))); err != nil {
		t.Fatal(err)
	}
	if err := inst.Host().FS().WriteFile("/www/page.html", []byte("the page\n")); err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(func(s *unikernel.Sys) {
		if err := s.StartApp(app); err != nil {
			t.Errorf("start: %v", err)
			s.Stop()
			return
		}
		fn(s, app)
		s.Stop()
	}); err != nil {
		t.Fatal(err)
	}
}

// httpGet performs one request on an existing connection and returns
// (statusLine, body).
func httpGet(t *testing.T, th *sched.Thread, conn *host.PeerConn, target string, keepAlive bool) (string, []byte) {
	t.Helper()
	connHdr := "keep-alive"
	if !keepAlive {
		connHdr = "close"
	}
	req := "GET " + target + " HTTP/1.1\r\nHost: guest\r\nConnection: " + connHdr + "\r\n\r\n"
	if err := conn.Send(th, []byte(req)); err != nil {
		t.Fatalf("send request: %v", err)
	}
	status, err := conn.RecvLine(th, 2*time.Second)
	if err != nil {
		t.Fatalf("status line: %v", err)
	}
	clen := -1
	for {
		line, err := conn.RecvLine(th, 2*time.Second)
		if err != nil {
			t.Fatalf("header: %v", err)
		}
		hl := strings.TrimRight(string(line), "\r\n")
		if hl == "" {
			break
		}
		if strings.HasPrefix(strings.ToLower(hl), "content-length:") {
			clen, err = strconv.Atoi(strings.TrimSpace(hl[len("content-length:"):]))
			if err != nil {
				t.Fatalf("bad content-length %q", hl)
			}
		}
	}
	if clen < 0 {
		t.Fatal("no Content-Length header")
	}
	body, err := conn.RecvExactly(th, clen, 2*time.Second)
	if err != nil {
		t.Fatalf("body: %v", err)
	}
	return strings.TrimRight(string(status), "\r\n"), body
}

func TestServeStaticFile(t *testing.T) {
	withNginx(t, core.DaSConfig(), func(s *unikernel.Sys, a *App) {
		th := s.Ctx().Thread()
		conn, err := s.NewPeer().Dial(th, DefaultPort, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		status, body := httpGet(t, th, conn, "/page.html", true)
		if status != "HTTP/1.1 200 OK" {
			t.Fatalf("status = %q", status)
		}
		if string(body) != "the page\n" {
			t.Fatalf("body = %q", body)
		}
		conn.Close(th)
	})
}

func TestKeepAliveServesManyRequests(t *testing.T) {
	withNginx(t, core.DaSConfig(), func(s *unikernel.Sys, a *App) {
		th := s.Ctx().Thread()
		conn, err := s.NewPeer().Dial(th, DefaultPort, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			status, _ := httpGet(t, th, conn, "/", true)
			if status != "HTTP/1.1 200 OK" {
				t.Fatalf("request %d: %q", i, status)
			}
		}
		conn.Close(th)
		if a.Requests != 20 {
			t.Fatalf("Requests = %d, want 20", a.Requests)
		}
	})
}

func TestHTTPErrors(t *testing.T) {
	withNginx(t, core.DaSConfig(), func(s *unikernel.Sys, a *App) {
		th := s.Ctx().Thread()
		conn, err := s.NewPeer().Dial(th, DefaultPort, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		status, _ := httpGet(t, th, conn, "/missing.html", true)
		if !strings.Contains(status, "404") {
			t.Fatalf("missing file: %q", status)
		}
		status, _ = httpGet(t, th, conn, "/../etc/passwd", true)
		if !strings.Contains(status, "403") {
			t.Fatalf("traversal: %q", status)
		}
		conn.Close(th)
	})
}

func TestRollingRejuvenationLosesNoRequests(t *testing.T) {
	// The Table V scenario: siege-style clients during component-by-
	// component rejuvenation — success ratio must be 100 %.
	withNginx(t, core.DaSConfig(), func(s *unikernel.Sys, a *App) {
		var ok, fail int
		clients := 4
		done := 0
		for cNum := 0; cNum < clients; cNum++ {
			peer := s.NewPeer()
			s.GoHost("siege"+strconv.Itoa(cNum), func(th *sched.Thread) {
				defer func() { done++ }()
				conn, err := peer.Dial(th, DefaultPort, 2*time.Second)
				if err != nil {
					fail++
					return
				}
				for i := 0; i < 25; i++ {
					req := "GET / HTTP/1.1\r\nHost: g\r\n\r\n"
					if err := conn.Send(th, []byte(req)); err != nil {
						fail++
						continue
					}
					if _, err := conn.RecvLine(th, 2*time.Second); err != nil {
						fail++
						continue
					}
					// Drain rest of response: headers + body.
					for {
						line, err := conn.RecvLine(th, 2*time.Second)
						if err != nil {
							fail++
							break
						}
						if strings.TrimRight(string(line), "\r\n") == "" {
							break
						}
					}
					if _, err := conn.RecvExactly(th, 180, 2*time.Second); err != nil {
						fail++
						continue
					}
					ok++
				}
				conn.Close(th)
			})
		}
		targets := []string{"vfs", "9pfs", "lwip", "netdev", "process", "sysinfo", "user", "timer"}
		for i := 0; done < clients; i++ {
			if err := s.Reboot(targets[i%len(targets)]); err != nil {
				t.Fatalf("rejuvenate %s: %v", targets[i%len(targets)], err)
			}
			s.Sleep(300 * time.Microsecond)
		}
		if fail != 0 {
			t.Fatalf("lost %d requests (served %d) across rejuvenation, want 0", fail, ok)
		}
		if ok != clients*25 {
			t.Fatalf("served %d, want %d", ok, clients*25)
		}
	})
}

func TestWorksInAllConfigurations(t *testing.T) {
	for name, cc := range map[string]core.Config{
		"vanilla": core.VanillaConfig(),
		"fsm":     core.FSmConfig(),
		"netm":    core.NETmConfig(),
	} {
		t.Run(name, func(t *testing.T) {
			withNginx(t, cc, func(s *unikernel.Sys, a *App) {
				th := s.Ctx().Thread()
				conn, err := s.NewPeer().Dial(th, DefaultPort, time.Second)
				if err != nil {
					t.Fatal(err)
				}
				status, _ := httpGet(t, th, conn, "/", false)
				if status != "HTTP/1.1 200 OK" {
					t.Fatalf("status = %q", status)
				}
				conn.Close(th)
			})
		})
	}
}
