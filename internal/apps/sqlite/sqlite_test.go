package sqlite

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"vampos/internal/core"
	"vampos/internal/unikernel"
)

// withDB boots an instance, starts the database, and runs fn.
func withDB(t *testing.T, coreCfg core.Config, fn func(s *unikernel.Sys, db *App)) {
	t.Helper()
	coreCfg.MaxVirtualTime = time.Hour
	db := New()
	inst, err := unikernel.New(db.Profile(unikernel.Config{Core: coreCfg}))
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(func(s *unikernel.Sys) {
		if err := s.StartApp(db); err != nil {
			t.Errorf("start app: %v", err)
			s.Stop()
			return
		}
		fn(s, db)
		s.Stop()
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCreateInsertSelect(t *testing.T) {
	withDB(t, core.DaSConfig(), func(s *unikernel.Sys, db *App) {
		db.MustExec(s, "CREATE TABLE kv (k TEXT, v TEXT)")
		db.MustExec(s, "INSERT INTO kv VALUES ('alpha', '1')")
		db.MustExec(s, "INSERT INTO kv VALUES ('beta', '2')")
		db.MustExec(s, "INSERT INTO kv VALUES ('alpha', '3')")

		res := db.MustExec(s, "SELECT * FROM kv WHERE k = 'alpha'")
		if len(res.Rows) != 2 {
			t.Fatalf("SELECT alpha = %d rows, want 2", len(res.Rows))
		}
		res = db.MustExec(s, "SELECT COUNT(*) FROM kv")
		if res.Count != 3 {
			t.Fatalf("COUNT = %d, want 3", res.Count)
		}
		res = db.MustExec(s, "SELECT * FROM kv")
		if len(res.Rows) != 3 || res.Cols[0] != "k" || res.Cols[1] != "v" {
			t.Fatalf("SELECT * = %+v", res)
		}
	})
}

func TestDeleteAndDrop(t *testing.T) {
	withDB(t, core.DaSConfig(), func(s *unikernel.Sys, db *App) {
		db.MustExec(s, "CREATE TABLE t (a, b)")
		for i := 0; i < 5; i++ {
			db.MustExec(s, "INSERT INTO t VALUES ('x"+strconv.Itoa(i%2)+"', 'y')")
		}
		res := db.MustExec(s, "DELETE FROM t WHERE a = 'x0'")
		if res.Count != 3 {
			t.Fatalf("deleted %d, want 3", res.Count)
		}
		if db.MustExec(s, "SELECT COUNT(*) FROM t").Count != 2 {
			t.Fatal("wrong survivor count")
		}
		db.MustExec(s, "DROP TABLE t")
		if _, err := db.Exec(s, "SELECT * FROM t"); err == nil {
			t.Fatal("query after drop succeeded")
		}
	})
}

func TestQuotedStringsAndEscapes(t *testing.T) {
	withDB(t, core.DaSConfig(), func(s *unikernel.Sys, db *App) {
		db.MustExec(s, "CREATE TABLE q (v)")
		db.MustExec(s, "INSERT INTO q VALUES ('it''s quoted, with (parens) = fun')")
		res := db.MustExec(s, "SELECT * FROM q")
		if res.Rows[0][0] != "it's quoted, with (parens) = fun" {
			t.Fatalf("stored %q", res.Rows[0][0])
		}
	})
}

func TestSQLErrors(t *testing.T) {
	withDB(t, core.DaSConfig(), func(s *unikernel.Sys, db *App) {
		cases := []string{
			"",
			"GRANT ALL",
			"CREATE kv (a)",
			"CREATE TABLE bad",
			"INSERT INTO missing VALUES ('x')",
			"SELECT * FROM missing",
			"SELECT a FROM missing",
			"DELETE FROM missing",
			"INSERT INTO kv VALUES ('unterminated",
		}
		db.MustExec(s, "CREATE TABLE kv (a, b)")
		cases = append(cases,
			"INSERT INTO kv VALUES ('only-one')",
			"SELECT * FROM kv WHERE nope = 'x'",
			"SELECT * FROM kv WHERE a",
			"CREATE TABLE kv (dup)",
		)
		for _, sql := range cases {
			if _, err := db.Exec(s, sql); err == nil {
				t.Errorf("%q: expected error", sql)
			}
		}
	})
}

func TestPersistenceAcrossFullReboot(t *testing.T) {
	withDB(t, core.DaSConfig(), func(s *unikernel.Sys, db *App) {
		db.MustExec(s, "CREATE TABLE kv (k, v)")
		for i := 0; i < 20; i++ {
			db.MustExec(s, "INSERT INTO kv VALUES ('k"+strconv.Itoa(i)+"', 'v')")
		}
		if err := s.FullReboot(); err != nil {
			t.Fatalf("full reboot: %v", err)
		}
		// Main re-ran and reloaded tables from the durable export.
		res := db.MustExec(s, "SELECT COUNT(*) FROM kv")
		if res.Count != 20 {
			t.Fatalf("rows after full reboot = %d, want 20", res.Count)
		}
		// And the table stays writable.
		db.MustExec(s, "INSERT INTO kv VALUES ('post', 'reboot')")
		if db.MustExec(s, "SELECT COUNT(*) FROM kv").Count != 21 {
			t.Fatal("insert after reboot lost")
		}
	})
}

func TestInsertsSurviveComponentReboots(t *testing.T) {
	withDB(t, core.DaSConfig(), func(s *unikernel.Sys, db *App) {
		db.MustExec(s, "CREATE TABLE kv (k, v)")
		for i := 0; i < 10; i++ {
			db.MustExec(s, "INSERT INTO kv VALUES ('a"+strconv.Itoa(i)+"', 'v')")
			if i == 4 {
				if err := s.Reboot("vfs"); err != nil {
					t.Fatalf("reboot vfs: %v", err)
				}
			}
			if i == 7 {
				if err := s.Reboot("9pfs"); err != nil {
					t.Fatalf("reboot 9pfs: %v", err)
				}
			}
		}
		if got := db.MustExec(s, "SELECT COUNT(*) FROM kv").Count; got != 10 {
			t.Fatalf("rows = %d after component reboots, want 10", got)
		}
		// The on-disk image is intact too.
		raw, err := s.HostFS().ReadFile("/db/kv.tbl")
		if err != nil {
			t.Fatal(err)
		}
		if n := strings.Count(string(raw), "\n"); n != 11 { // schema + 10 rows
			t.Fatalf("table file has %d records, want 11", n)
		}
	})
}

func TestVanillaConfigWorksToo(t *testing.T) {
	withDB(t, core.VanillaConfig(), func(s *unikernel.Sys, db *App) {
		db.MustExec(s, "CREATE TABLE t (a)")
		db.MustExec(s, "INSERT INTO t VALUES ('1')")
		if db.MustExec(s, "SELECT COUNT(*) FROM t").Count != 1 {
			t.Fatal("vanilla insert lost")
		}
	})
}
