package sqlite

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
	"time"

	"vampos/internal/core"
	"vampos/internal/unikernel"
)

// TestRandomWorkloadMatchesOracle drives random INSERT/DELETE/SELECT
// sequences against both the database and an in-memory oracle, with
// component reboots and a full reboot sprinkled in; the visible rows
// must always match.
func TestRandomWorkloadMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		return runOracleTrial(t, seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func runOracleTrial(t *testing.T, seed int64) bool {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := New()
	cfg := db.Profile(unikernel.Config{Core: core.DaSConfig()})
	cfg.Core.MaxVirtualTime = time.Hour
	inst, err := unikernel.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ok := true
	err = inst.Run(func(s *unikernel.Sys) {
		defer s.Stop()
		if err := s.StartApp(db); err != nil {
			t.Error(err)
			ok = false
			return
		}
		db.MustExec(s, "CREATE TABLE o (k, v)")
		// oracle: multiset of (k,v) rows
		type row struct{ k, v string }
		var oracle []row
		check := func() bool {
			res, err := db.Exec(s, "SELECT COUNT(*) FROM o")
			if err != nil {
				t.Errorf("count: %v", err)
				return false
			}
			if res.Count != len(oracle) {
				t.Errorf("seed %d: count = %d, oracle %d", seed, res.Count, len(oracle))
				return false
			}
			// Spot-check one key's matching rows.
			if len(oracle) > 0 {
				probe := oracle[rng.Intn(len(oracle))].k
				want := 0
				for _, r := range oracle {
					if r.k == probe {
						want++
					}
				}
				res, err := db.Exec(s, "SELECT * FROM o WHERE k = '"+probe+"'")
				if err != nil {
					t.Errorf("select: %v", err)
					return false
				}
				if len(res.Rows) != want {
					t.Errorf("seed %d: key %s rows = %d, oracle %d", seed, probe, len(res.Rows), want)
					return false
				}
			}
			return true
		}
		for step := 0; step < 60; step++ {
			switch op := rng.Intn(10); {
			case op < 6: // insert
				k := "k" + strconv.Itoa(rng.Intn(8))
				v := "v" + strconv.Itoa(rng.Intn(100))
				db.MustExec(s, fmt.Sprintf("INSERT INTO o VALUES ('%s', '%s')", k, v))
				oracle = append(oracle, row{k, v})
			case op < 8: // delete by key
				k := "k" + strconv.Itoa(rng.Intn(8))
				res := db.MustExec(s, "DELETE FROM o WHERE k = '"+k+"'")
				kept := oracle[:0]
				removed := 0
				for _, r := range oracle {
					if r.k == k {
						removed++
						continue
					}
					kept = append(kept, r)
				}
				oracle = kept
				if res.Count != removed {
					t.Errorf("seed %d: delete %s removed %d, oracle %d", seed, k, res.Count, removed)
					ok = false
					return
				}
			case op == 8: // component reboot
				target := []string{"vfs", "9pfs", "process"}[rng.Intn(3)]
				if err := s.Reboot(target); err != nil {
					t.Errorf("reboot %s: %v", target, err)
					ok = false
					return
				}
			default: // full reboot: durable state must reload identically
				if err := s.FullReboot(); err != nil {
					t.Errorf("full reboot: %v", err)
					ok = false
					return
				}
			}
			if !check() {
				ok = false
				return
			}
		}
	})
	if err != nil {
		t.Error(err)
		return false
	}
	return ok
}
