// Package sqlite implements the paper's SQLite application: an embedded
// relational database that parses a small SQL subset and persists tables
// through VFS→9PFS (§VI: seven components, no network). The Fig. 7
// workload — 10,000 single-byte inserts — runs through Exec, each insert
// appending a row record to the table file.
package sqlite

import (
	"fmt"
	"strings"

	"vampos/internal/unikernel"
)

// Dir is the database directory on the guest file system.
const Dir = "/db"

// fieldSep separates row fields in the on-disk record format.
const fieldSep = "\x1f"

// table is one loaded table: schema, row cache, and its open file.
type table struct {
	name string
	cols []string
	rows [][]string
	fd   int
}

// App is the embedded database application.
type App struct {
	// SyncWrites issues fsync after every insert, modelling SQLite's
	// durable transaction commits.
	SyncWrites bool

	tables map[string]*table

	// Stats
	Inserts, Selects, Deletes uint64
}

// New creates the database with synchronous writes enabled.
func New() *App { return &App{SyncWrites: true} }

// Name implements unikernel.App.
func (a *App) Name() string { return "sqlite" }

// Profile returns the instance profile for SQLite (paper §VI: PROCESS,
// SYSINFO, USER, TIME, VFS, 9PFS, VIRTIO — no network).
func (a *App) Profile(cfg unikernel.Config) unikernel.Config {
	cfg.FS = true
	cfg.Net = false
	cfg.Sysinfo = true
	return cfg
}

// Main implements unikernel.App: prepare the database directory and
// reload any existing tables.
func (a *App) Main(s *unikernel.Sys) error {
	a.tables = make(map[string]*table)
	if _, _, err := s.Stat(Dir); err != nil {
		if err := s.Mkdir(Dir); err != nil {
			return fmt.Errorf("sqlite: mkdir %s: %w", Dir, err)
		}
	}
	names, err := s.ReadDir(Dir)
	if err != nil {
		return nil
	}
	for _, n := range names {
		if strings.HasSuffix(n, ".tbl") {
			if err := a.loadTable(s, strings.TrimSuffix(n, ".tbl")); err != nil {
				return err
			}
		}
	}
	return nil
}

// Result is a query result: column names plus matching rows.
type Result struct {
	Cols []string
	Rows [][]string
	// Count carries COUNT(*) results and affected-row counts.
	Count int
}

// Exec parses and executes one SQL statement.
func (a *App) Exec(s *unikernel.Sys, sql string) (*Result, error) {
	toks, err := tokenize(sql)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("sqlite: empty statement")
	}
	switch strings.ToUpper(toks[0]) {
	case "CREATE":
		return a.execCreate(s, toks)
	case "INSERT":
		return a.execInsert(s, toks)
	case "SELECT":
		return a.execSelect(toks)
	case "DELETE":
		return a.execDelete(s, toks)
	case "DROP":
		return a.execDrop(s, toks)
	default:
		return nil, fmt.Errorf("sqlite: unsupported statement %q", toks[0])
	}
}

// tokenize splits SQL into tokens; quoted strings ('it”s') become
// single tokens carrying a quote marker prefix.
func tokenize(sql string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(sql) {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';':
			i++
		case c == '(' || c == ')' || c == ',' || c == '*' || c == '=':
			toks = append(toks, string(c))
			i++
		case c == '\'':
			j := i + 1
			var b strings.Builder
			for {
				if j >= len(sql) {
					return nil, fmt.Errorf("sqlite: unterminated string literal")
				}
				if sql[j] == '\'' {
					if j+1 < len(sql) && sql[j+1] == '\'' {
						b.WriteByte('\'')
						j += 2
						continue
					}
					j++
					break
				}
				b.WriteByte(sql[j])
				j++
			}
			toks = append(toks, "'"+b.String())
			i = j
		default:
			j := i
			for j < len(sql) && !strings.ContainsRune(" \t\n\r();,*='", rune(sql[j])) {
				j++
			}
			toks = append(toks, sql[i:j])
			i = j
		}
	}
	return toks, nil
}

func isString(tok string) bool { return strings.HasPrefix(tok, "'") }

func literal(tok string) string {
	if isString(tok) {
		return tok[1:]
	}
	return tok
}

// expect consumes one token, case-insensitively.
func expect(toks []string, i int, want string) (int, error) {
	if i >= len(toks) || !strings.EqualFold(toks[i], want) {
		got := "<end>"
		if i < len(toks) {
			got = toks[i]
		}
		return i, fmt.Errorf("sqlite: expected %q, got %q", want, got)
	}
	return i + 1, nil
}

func (a *App) execCreate(s *unikernel.Sys, toks []string) (*Result, error) {
	i, err := expect(toks, 1, "TABLE")
	if err != nil {
		return nil, err
	}
	if i >= len(toks) {
		return nil, fmt.Errorf("sqlite: missing table name")
	}
	name := strings.ToLower(toks[i])
	i++
	if _, dup := a.tables[name]; dup {
		return nil, fmt.Errorf("sqlite: table %q already exists", name)
	}
	if i, err = expect(toks, i, "("); err != nil {
		return nil, err
	}
	var cols []string
	for i < len(toks) && toks[i] != ")" {
		if toks[i] == "," {
			i++
			continue
		}
		cols = append(cols, strings.ToLower(toks[i]))
		i++
		// Skip an optional type name (TEXT, INTEGER…).
		if i < len(toks) && toks[i] != "," && toks[i] != ")" {
			i++
		}
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("sqlite: table %q needs columns", name)
	}
	t := &table{name: name, cols: cols, fd: -1}
	if err := a.openTableFile(s, t, true); err != nil {
		return nil, err
	}
	// Persist the schema as the first record.
	if err := a.appendRecord(s, t, append([]string{"@schema"}, cols...)); err != nil {
		return nil, err
	}
	a.tables[name] = t
	return &Result{}, nil
}

func (a *App) openTableFile(s *unikernel.Sys, t *table, create bool) error {
	flags := unikernel.OWronly | unikernel.OAppend
	if create {
		flags |= unikernel.OCreate
	}
	fd, err := s.Open(Dir+"/"+t.name+".tbl", flags)
	if err != nil {
		return err
	}
	t.fd = fd
	return nil
}

func (a *App) appendRecord(s *unikernel.Sys, t *table, fields []string) error {
	line := strings.Join(fields, fieldSep) + "\n"
	if _, err := s.Write(t.fd, []byte(line)); err != nil {
		return err
	}
	if a.SyncWrites {
		return s.Fsync(t.fd)
	}
	return nil
}

// loadTable reads a table file back into memory (boot after restart).
func (a *App) loadTable(s *unikernel.Sys, name string) error {
	path := Dir + "/" + name + ".tbl"
	fd, err := s.Open(path, unikernel.ORdonly)
	if err != nil {
		return err
	}
	var raw []byte
	for {
		data, eof, err := s.ReadNB(fd, 1<<16)
		if err != nil {
			_ = s.Close(fd)
			return err
		}
		raw = append(raw, data...)
		if eof || len(data) == 0 {
			break
		}
	}
	if err := s.Close(fd); err != nil {
		return err
	}
	t := &table{name: name, fd: -1}
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" {
			continue
		}
		fields := strings.Split(line, fieldSep)
		if fields[0] == "@schema" {
			t.cols = fields[1:]
			continue
		}
		t.rows = append(t.rows, fields)
	}
	if t.cols == nil {
		return fmt.Errorf("sqlite: table file %s has no schema record", path)
	}
	if err := a.openTableFile(s, t, false); err != nil {
		return err
	}
	a.tables[name] = t
	return nil
}

func (a *App) execInsert(s *unikernel.Sys, toks []string) (*Result, error) {
	i, err := expect(toks, 1, "INTO")
	if err != nil {
		return nil, err
	}
	if i >= len(toks) {
		return nil, fmt.Errorf("sqlite: missing table name")
	}
	t, ok := a.tables[strings.ToLower(toks[i])]
	if !ok {
		return nil, fmt.Errorf("sqlite: no such table %q", toks[i])
	}
	i++
	if i, err = expect(toks, i, "VALUES"); err != nil {
		return nil, err
	}
	if i, err = expect(toks, i, "("); err != nil {
		return nil, err
	}
	var vals []string
	for i < len(toks) && toks[i] != ")" {
		if toks[i] == "," {
			i++
			continue
		}
		vals = append(vals, literal(toks[i]))
		i++
	}
	if len(vals) != len(t.cols) {
		return nil, fmt.Errorf("sqlite: table %s has %d columns, got %d values", t.name, len(t.cols), len(vals))
	}
	if err := a.appendRecord(s, t, vals); err != nil {
		return nil, err
	}
	t.rows = append(t.rows, vals)
	a.Inserts++
	return &Result{Count: 1}, nil
}

// parseWhere parses an optional "WHERE col = 'val'" clause.
func (a *App) parseWhere(t *table, toks []string, i int) (col int, val string, has bool, err error) {
	if i >= len(toks) {
		return 0, "", false, nil
	}
	if !strings.EqualFold(toks[i], "WHERE") {
		return 0, "", false, fmt.Errorf("sqlite: unexpected token %q", toks[i])
	}
	i++
	if i+2 >= len(toks) || toks[i+1] != "=" {
		return 0, "", false, fmt.Errorf("sqlite: malformed WHERE clause")
	}
	name := strings.ToLower(toks[i])
	for ci, cn := range t.cols {
		if cn == name {
			return ci, literal(toks[i+2]), true, nil
		}
	}
	return 0, "", false, fmt.Errorf("sqlite: no such column %q", name)
}

func (a *App) execSelect(toks []string) (*Result, error) {
	i := 1
	count := false
	switch {
	case i < len(toks) && toks[i] == "*":
		i++
	case i+3 < len(toks) && strings.EqualFold(toks[i], "COUNT") && toks[i+1] == "(" && toks[i+2] == "*" && toks[i+3] == ")":
		count = true
		i += 4
	default:
		return nil, fmt.Errorf("sqlite: only SELECT * and SELECT COUNT(*) are supported")
	}
	var err error
	if i, err = expect(toks, i, "FROM"); err != nil {
		return nil, err
	}
	if i >= len(toks) {
		return nil, fmt.Errorf("sqlite: missing table name")
	}
	t, ok := a.tables[strings.ToLower(toks[i])]
	if !ok {
		return nil, fmt.Errorf("sqlite: no such table %q", toks[i])
	}
	i++
	col, val, hasWhere, err := a.parseWhere(t, toks, i)
	if err != nil {
		return nil, err
	}
	a.Selects++
	res := &Result{Cols: t.cols}
	for _, row := range t.rows {
		if hasWhere && row[col] != val {
			continue
		}
		if !count {
			res.Rows = append(res.Rows, row)
		}
		res.Count++
	}
	return res, nil
}

func (a *App) execDelete(s *unikernel.Sys, toks []string) (*Result, error) {
	i, err := expect(toks, 1, "FROM")
	if err != nil {
		return nil, err
	}
	if i >= len(toks) {
		return nil, fmt.Errorf("sqlite: missing table name")
	}
	t, ok := a.tables[strings.ToLower(toks[i])]
	if !ok {
		return nil, fmt.Errorf("sqlite: no such table %q", toks[i])
	}
	i++
	col, val, hasWhere, err := a.parseWhere(t, toks, i)
	if err != nil {
		return nil, err
	}
	kept := t.rows[:0]
	removed := 0
	for _, row := range t.rows {
		if !hasWhere || row[col] == val {
			removed++
			continue
		}
		kept = append(kept, row)
	}
	t.rows = kept
	a.Deletes += uint64(removed)
	if removed > 0 {
		if err := a.rewriteTable(s, t); err != nil {
			return nil, err
		}
	}
	return &Result{Count: removed}, nil
}

// rewriteTable compacts a table file after deletions.
func (a *App) rewriteTable(s *unikernel.Sys, t *table) error {
	if t.fd >= 0 {
		if err := s.Close(t.fd); err != nil {
			return err
		}
	}
	fd, err := s.Open(Dir+"/"+t.name+".tbl", unikernel.OCreate|unikernel.OWronly|unikernel.OTrunc)
	if err != nil {
		return err
	}
	t.fd = fd
	if err := a.appendRecord(s, t, append([]string{"@schema"}, t.cols...)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := a.appendRecord(s, t, row); err != nil {
			return err
		}
	}
	return nil
}

func (a *App) execDrop(s *unikernel.Sys, toks []string) (*Result, error) {
	i, err := expect(toks, 1, "TABLE")
	if err != nil {
		return nil, err
	}
	if i >= len(toks) {
		return nil, fmt.Errorf("sqlite: missing table name")
	}
	name := strings.ToLower(toks[i])
	t, ok := a.tables[name]
	if !ok {
		return nil, fmt.Errorf("sqlite: no such table %q", name)
	}
	if t.fd >= 0 {
		if err := s.Close(t.fd); err != nil {
			return nil, err
		}
	}
	if err := s.Unlink(Dir + "/" + name + ".tbl"); err != nil {
		return nil, err
	}
	delete(a.tables, name)
	return &Result{}, nil
}

// MustExec is a test/workload convenience that panics on error.
func (a *App) MustExec(s *unikernel.Sys, sql string) *Result {
	res, err := a.Exec(s, sql)
	if err != nil {
		panic(fmt.Sprintf("sqlite: %s: %v", sql, err))
	}
	return res
}

var _ unikernel.App = (*App)(nil)
