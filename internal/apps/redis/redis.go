// Package redis implements the paper's Redis application: an in-memory
// key-value server speaking a line-oriented RESP-like protocol, with an
// optional synchronous AOF (append-only file) persisted through
// VFS→9PFS→virtio-9p, exactly the configuration §VII-C benchmarks ("we
// turn on the AOF backup feature … it preserves volatile KVs into
// storage synchronously via fsync()").
//
// Values live in the application arena (guest memory pages), so the
// Fig. 7b memory-utilization numbers reflect real resident pages.
package redis

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"vampos/internal/mem"
	"vampos/internal/unikernel"
)

// DefaultPort is the Redis port.
const DefaultPort = 6379

// AOFPath is where the append-only file lives on the export.
const AOFPath = "/data/appendonly.aof"

// valueRef locates a value in the application arena.
type valueRef struct {
	addr mem.Addr
	size int
}

// App is the Redis application.
type App struct {
	// Port overrides DefaultPort when non-zero.
	Port int
	// AOF enables the synchronous append-only file.
	AOF bool
	// FsyncEvery controls AOF fsync frequency: 1 = every write (the
	// paper's synchronous configuration), N > 1 batches.
	FsyncEvery int
	// ReplayCost charges virtual time per AOF entry replayed at startup,
	// modelling the hash-table rebuild a real Redis pays when reloading
	// its AOF after a full reboot (the multi-second outage of Fig. 8).
	ReplayCost time.Duration

	store  map[string]valueRef
	aofFD  int
	writes int

	// Stats
	Sets, Gets, Dels uint64
	AOFReplayed      int
}

// New creates a Redis application with AOF enabled.
func New() *App {
	return &App{AOF: true, FsyncEvery: 1, ReplayCost: 20 * time.Microsecond}
}

// Name implements unikernel.App.
func (a *App) Name() string { return "redis" }

// Profile returns the instance profile for Redis (paper §VI: nine
// components, everything linked).
func (a *App) Profile(cfg unikernel.Config) unikernel.Config {
	cfg.FS = true
	cfg.Net = true
	cfg.Sysinfo = true
	return cfg
}

// Keys returns the number of stored keys.
func (a *App) Keys() int { return len(a.store) }

// Main implements unikernel.App: reload the AOF if present, then serve.
func (a *App) Main(s *unikernel.Sys) error {
	a.store = make(map[string]valueRef)
	a.aofFD = -1
	a.writes = 0
	a.AOFReplayed = 0
	if a.FsyncEvery == 0 {
		a.FsyncEvery = 1
	}
	if a.AOF {
		if _, _, err := s.Stat("/data"); err != nil {
			if err := s.Mkdir("/data"); err != nil {
				return fmt.Errorf("redis: mkdir /data: %w", err)
			}
		}
		if err := a.loadAOF(s); err != nil {
			return err
		}
		fd, err := s.Open(AOFPath, unikernel.OCreate|unikernel.OWronly|unikernel.OAppend)
		if err != nil {
			return fmt.Errorf("redis: open aof: %w", err)
		}
		a.aofFD = fd
	}
	port := a.Port
	if port == 0 {
		port = DefaultPort
	}
	lfd, err := s.Socket()
	if err != nil {
		return err
	}
	if err := s.Bind(lfd, port); err != nil {
		return err
	}
	if err := s.Listen(lfd, 128); err != nil {
		return err
	}
	s.Go("redis/acceptor", func(as *unikernel.Sys) {
		for {
			cfd, err := as.Accept(lfd)
			if err != nil {
				return
			}
			as.Go("redis/conn"+strconv.Itoa(cfd), func(cs *unikernel.Sys) {
				a.serve(cs, cfd)
			})
		}
	})
	return nil
}

// loadAOF replays the append-only file: the expensive restore a full
// reboot pays and a VampOS component reboot avoids (Fig. 8).
func (a *App) loadAOF(s *unikernel.Sys) error {
	fd, err := s.Open(AOFPath, unikernel.ORdonly)
	if err != nil {
		return nil // no AOF yet
	}
	defer func() { _ = s.Close(fd) }()
	var pending []byte
	for {
		data, eof, err := s.ReadNB(fd, 1<<16)
		if err != nil {
			return err
		}
		pending = append(pending, data...)
		if eof {
			break
		}
	}
	for _, line := range strings.Split(string(pending), "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, " ", 3)
		switch parts[0] {
		case "SET":
			if len(parts) == 3 {
				a.setValue(s, parts[1], []byte(parts[2]))
				a.AOFReplayed++
			}
		case "DEL":
			if len(parts) >= 2 {
				a.delValue(s, parts[1])
				a.AOFReplayed++
			}
		}
		if a.ReplayCost > 0 && a.AOFReplayed%64 == 0 {
			s.Sleep(64 * a.ReplayCost)
		}
	}
	return nil
}

// setValue stores a value in the application arena.
func (a *App) setValue(s *unikernel.Sys, key string, val []byte) {
	if old, ok := a.store[key]; ok {
		_ = s.Ctx().Heap().Free(old.addr)
	}
	size := len(val)
	if size == 0 {
		size = 1
	}
	addr, err := s.Ctx().Heap().Alloc(int64(size))
	if err != nil {
		// Arena full: fall back to dropping the oldest semantics would
		// be an eviction policy; the model simply refuses.
		return
	}
	if err := s.Ctx().Mem().Write(addr, val); err != nil {
		_ = s.Ctx().Heap().Free(addr)
		return
	}
	a.store[key] = valueRef{addr: addr, size: len(val)}
}

func (a *App) getValue(s *unikernel.Sys, key string) ([]byte, bool) {
	ref, ok := a.store[key]
	if !ok {
		return nil, false
	}
	val, err := s.Ctx().Mem().ReadBytes(ref.addr, ref.size)
	if err != nil {
		return nil, false
	}
	return val, true
}

func (a *App) delValue(s *unikernel.Sys, key string) bool {
	ref, ok := a.store[key]
	if !ok {
		return false
	}
	_ = s.Ctx().Heap().Free(ref.addr)
	delete(a.store, key)
	return true
}

// appendAOF persists one mutation synchronously.
func (a *App) appendAOF(s *unikernel.Sys, line string) error {
	if a.aofFD < 0 {
		return nil
	}
	if _, err := s.Write(a.aofFD, []byte(line)); err != nil {
		return err
	}
	a.writes++
	if a.writes%a.FsyncEvery == 0 {
		return s.Fsync(a.aofFD)
	}
	return nil
}

func (a *App) serve(s *unikernel.Sys, fd int) {
	defer func() { _ = s.Close(fd) }()
	var buf []byte
	for {
		data, eof, err := s.Recv(fd, 4096)
		if err != nil || eof {
			return
		}
		buf = append(buf, data...)
		for {
			nl := indexByte(buf, '\n')
			if nl < 0 {
				break
			}
			line := strings.TrimRight(string(buf[:nl]), "\r")
			buf = buf[nl+1:]
			resp := a.Execute(s, line)
			if _, err := s.Send(fd, []byte(resp)); err != nil {
				return
			}
		}
	}
}

func indexByte(p []byte, b byte) int {
	for i, v := range p {
		if v == b {
			return i
		}
	}
	return -1
}

// Execute runs one command line and returns the protocol response. It is
// exported so workloads can also drive the store in-process.
func (a *App) Execute(s *unikernel.Sys, line string) string {
	parts := strings.SplitN(line, " ", 3)
	if len(parts) == 0 || parts[0] == "" {
		return "-ERR empty command\n"
	}
	switch strings.ToUpper(parts[0]) {
	case "PING":
		return "+PONG\n"
	case "SET":
		if len(parts) != 3 {
			return "-ERR wrong number of arguments for 'set'\n"
		}
		a.setValue(s, parts[1], []byte(parts[2]))
		a.Sets++
		if err := a.appendAOF(s, "SET "+parts[1]+" "+parts[2]+"\n"); err != nil {
			return "-ERR aof: " + err.Error() + "\n"
		}
		return "+OK\n"
	case "GET":
		if len(parts) < 2 {
			return "-ERR wrong number of arguments for 'get'\n"
		}
		a.Gets++
		val, ok := a.getValue(s, parts[1])
		if !ok {
			return "$-1\n"
		}
		return "$" + strconv.Itoa(len(val)) + "\n" + string(val) + "\n"
	case "DEL":
		if len(parts) < 2 {
			return "-ERR wrong number of arguments for 'del'\n"
		}
		n := 0
		if a.delValue(s, parts[1]) {
			n = 1
			a.Dels++
			if err := a.appendAOF(s, "DEL "+parts[1]+"\n"); err != nil {
				return "-ERR aof: " + err.Error() + "\n"
			}
		}
		return ":" + strconv.Itoa(n) + "\n"
	case "DBSIZE":
		return ":" + strconv.Itoa(len(a.store)) + "\n"
	default:
		return "-ERR unknown command '" + parts[0] + "'\n"
	}
}

var _ unikernel.App = (*App)(nil)
