// Package redis implements the paper's Redis application: an in-memory
// key-value server speaking a line-oriented RESP-like protocol, with an
// optional synchronous AOF (append-only file) persisted through
// VFS→9PFS→virtio-9p, exactly the configuration §VII-C benchmarks ("we
// turn on the AOF backup feature … it preserves volatile KVs into
// storage synchronously via fsync()").
//
// Values live in the application arena (guest memory pages), so the
// Fig. 7b memory-utilization numbers reflect real resident pages.
package redis

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"vampos/internal/mem"
	"vampos/internal/unikernel"
)

// DefaultPort is the Redis port.
const DefaultPort = 6379

// Protocol bounds. A request line arrives from the network boundary —
// attacker turf — and the AOF is a line-oriented replica of accepted
// mutations, so anything that could smuggle a line break or an unbounded
// length into the store must be rejected before any state changes.
const (
	// MaxKeyLen caps key bytes per command.
	MaxKeyLen = 512
	// MaxValueLen caps value bytes per command.
	MaxValueLen = 64 << 10
	// MaxLineLen caps a buffered request line; connections exceeding it
	// are answered with a protocol error and dropped.
	MaxLineLen = MaxValueLen + MaxKeyLen + 16
)

// AOFPath is where the append-only file lives on the export.
const AOFPath = "/data/appendonly.aof"

// valueRef locates a value in the application arena.
type valueRef struct {
	addr mem.Addr
	size int
}

// App is the Redis application.
type App struct {
	// Port overrides DefaultPort when non-zero.
	Port int
	// AOF enables the synchronous append-only file.
	AOF bool
	// FsyncEvery controls AOF fsync frequency: 1 = every write (the
	// paper's synchronous configuration), N > 1 batches.
	FsyncEvery int
	// ReplayCost charges virtual time per AOF entry replayed at startup,
	// modelling the hash-table rebuild a real Redis pays when reloading
	// its AOF after a full reboot (the multi-second outage of Fig. 8).
	ReplayCost time.Duration
	// CPUWork makes each accepted SET perform that many real checksum
	// passes over the value before it is stored. A real Redis spends
	// per-request CPU on parsing, hashing, and serialization that this
	// model otherwise skips; the sustained-load scaling figure sets this
	// so request handling is CPU-bound and core scaling is measurable.
	// Zero (the default) keeps the historical behaviour.
	CPUWork int

	store    map[string]valueRef
	aofFD    int
	writes   int
	workSink uint64

	// Stats
	Sets, Gets, Dels uint64
	AOFReplayed      int
}

// New creates a Redis application with AOF enabled.
func New() *App {
	return &App{AOF: true, FsyncEvery: 1, ReplayCost: 20 * time.Microsecond}
}

// Name implements unikernel.App.
func (a *App) Name() string { return "redis" }

// Profile returns the instance profile for Redis (paper §VI: nine
// components, everything linked).
func (a *App) Profile(cfg unikernel.Config) unikernel.Config {
	cfg.FS = true
	cfg.Net = true
	cfg.Sysinfo = true
	return cfg
}

// Keys returns the number of stored keys.
func (a *App) Keys() int { return len(a.store) }

// Main implements unikernel.App: reload the AOF if present, then serve.
func (a *App) Main(s *unikernel.Sys) error {
	a.store = make(map[string]valueRef)
	a.aofFD = -1
	a.writes = 0
	a.AOFReplayed = 0
	if a.FsyncEvery == 0 {
		a.FsyncEvery = 1
	}
	if a.AOF {
		if _, _, err := s.Stat("/data"); err != nil {
			if err := s.Mkdir("/data"); err != nil {
				return fmt.Errorf("redis: mkdir /data: %w", err)
			}
		}
		if err := a.loadAOF(s); err != nil {
			return err
		}
		fd, err := s.Open(AOFPath, unikernel.OCreate|unikernel.OWronly|unikernel.OAppend)
		if err != nil {
			return fmt.Errorf("redis: open aof: %w", err)
		}
		a.aofFD = fd
	}
	port := a.Port
	if port == 0 {
		port = DefaultPort
	}
	lfd, err := s.Socket()
	if err != nil {
		return err
	}
	if err := s.Bind(lfd, port); err != nil {
		return err
	}
	if err := s.Listen(lfd, 128); err != nil {
		return err
	}
	s.Go("redis/acceptor", func(as *unikernel.Sys) {
		for {
			cfd, err := as.Accept(lfd)
			if err != nil {
				return
			}
			as.Go("redis/conn"+strconv.Itoa(cfd), func(cs *unikernel.Sys) {
				a.serve(cs, cfd)
			})
		}
	})
	return nil
}

// loadAOF replays the append-only file: the expensive restore a full
// reboot pays and a VampOS component reboot avoids (Fig. 8).
func (a *App) loadAOF(s *unikernel.Sys) error {
	fd, err := s.Open(AOFPath, unikernel.ORdonly)
	if err != nil {
		return nil // no AOF yet
	}
	defer func() { _ = s.Close(fd) }()
	var pending []byte
	for {
		data, eof, err := s.ReadNB(fd, 1<<16)
		if err != nil {
			return err
		}
		pending = append(pending, data...)
		if eof {
			break
		}
	}
	for _, line := range strings.Split(string(pending), "\n") {
		if line == "" {
			continue
		}
		// The AOF sits in durable state an in-domain tamper campaign can
		// flip bytes in; replay through the same validator as the wire so
		// a corrupted entry is skipped, not installed.
		parts := strings.SplitN(line, " ", 3)
		switch parts[0] {
		case "SET":
			if len(parts) == 3 && validKey(parts[1]) && validValue(parts[2]) {
				a.setValue(s, parts[1], []byte(parts[2]))
				a.AOFReplayed++
			}
		case "DEL":
			if len(parts) == 2 && validKey(parts[1]) {
				a.delValue(s, parts[1])
				a.AOFReplayed++
			}
		}
		if a.ReplayCost > 0 && a.AOFReplayed%64 == 0 {
			s.Sleep(64 * a.ReplayCost)
		}
	}
	return nil
}

// setValue stores a value in the application arena. The mutation runs
// through Thread.Do: the application heap is one allocator shared by
// every app thread, so inside a buffered round slice the alloc/free and
// the store-map update are journaled and execute at the round commit in
// merge order — the only way concurrent cells can share the allocator
// without racing and without making addresses depend on runner timing.
// Outside a round Do runs the closure inline, so the legacy baton's
// behaviour is bit-for-bit unchanged. Deferral is invisible to the
// protocol: the +OK response crosses the network strictly after the
// commit, so a follow-up GET always sees the committed value.
func (a *App) setValue(s *unikernel.Sys, key string, val []byte) {
	s.Ctx().Thread().Do(func() {
		if old, ok := a.store[key]; ok {
			_ = s.Ctx().Heap().Free(old.addr)
		}
		size := len(val)
		if size == 0 {
			size = 1
		}
		addr, err := s.Ctx().Heap().Alloc(int64(size))
		if err != nil {
			// Arena full: fall back to dropping the oldest semantics would
			// be an eviction policy; the model simply refuses.
			return
		}
		if err := s.Ctx().Mem().Write(addr, val); err != nil {
			_ = s.Ctx().Heap().Free(addr)
			return
		}
		a.store[key] = valueRef{addr: addr, size: len(val)}
	})
}

func (a *App) getValue(s *unikernel.Sys, key string) ([]byte, bool) {
	ref, ok := a.store[key]
	if !ok {
		return nil, false
	}
	val, err := s.Ctx().Mem().ReadBytes(ref.addr, ref.size)
	if err != nil {
		return nil, false
	}
	return val, true
}

// delValue removes a key; the arena free is deferred exactly as in
// setValue (shared-allocator rule). The existence check stays in-slice:
// only this connection's thread mutates this cell's store, so the check
// is stale only against writes journaled earlier in the same slice — a
// same-chunk pipelined mutation, which the one-command-per-round-trip
// clients never produce (a double DEL in one chunk degrades to an
// idempotent no-op free at commit).
func (a *App) delValue(s *unikernel.Sys, key string) bool {
	ref, ok := a.store[key]
	if !ok {
		return false
	}
	s.Ctx().Thread().Do(func() {
		_ = s.Ctx().Heap().Free(ref.addr)
		delete(a.store, key)
	})
	return true
}

// appendAOF persists one mutation synchronously.
func (a *App) appendAOF(s *unikernel.Sys, line string) error {
	if a.aofFD < 0 {
		return nil
	}
	if _, err := s.Write(a.aofFD, []byte(line)); err != nil {
		return err
	}
	a.writes++
	if a.writes%a.FsyncEvery == 0 {
		return s.Fsync(a.aofFD)
	}
	return nil
}

func (a *App) serve(s *unikernel.Sys, fd int) {
	defer func() { _ = s.Close(fd) }()
	var buf []byte
	for {
		data, eof, err := s.Recv(fd, 4096)
		if err != nil || eof {
			return
		}
		buf = append(buf, data...)
		for {
			nl := indexByte(buf, '\n')
			if nl < 0 {
				// An unterminated line must not buffer without bound: a
				// client streaming newline-free bytes would otherwise grow
				// buf until the host OOMs. Answer and hang up.
				if len(buf) > MaxLineLen {
					_, _ = s.Send(fd, []byte("-ERR protocol: request line too long\n"))
					return
				}
				break
			}
			line := strings.TrimRight(string(buf[:nl]), "\r")
			buf = buf[nl+1:]
			resp := a.Execute(s, line)
			if _, err := s.Send(fd, []byte(resp)); err != nil {
				return
			}
		}
	}
}

// fnvFold runs one FNV-1a pass over s seeded with acc: the CPUWork
// checksum kernel. Folding into an accumulator the caller stores keeps
// the work observable, so it cannot be optimized away.
func fnvFold(acc uint64, s string) uint64 {
	h := acc ^ 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func indexByte(p []byte, b byte) int {
	for i, v := range p {
		if v == b {
			return i
		}
	}
	return -1
}

// command is one parsed, validated request.
type command struct {
	Name string // upper-cased verb
	Key  string
	Val  string
}

// validKey rejects keys that could corrupt the line-oriented AOF or the
// wire protocol: empty, oversized, or containing control bytes (which
// include '\n' and '\r' — an embedded line break in a key would let one
// SET forge a second AOF entry).
func validKey(k string) bool {
	if k == "" || len(k) > MaxKeyLen {
		return false
	}
	for i := 0; i < len(k); i++ {
		if k[i] < 0x20 || k[i] == 0x7F {
			return false
		}
	}
	return true
}

// validValue rejects oversized values and embedded line breaks. Other
// control bytes are allowed — values are binary-ish — but CR/LF would
// split the AOF line on replay.
func validValue(v string) bool {
	if len(v) > MaxValueLen {
		return false
	}
	for i := 0; i < len(v); i++ {
		if v[i] == '\n' || v[i] == '\r' {
			return false
		}
	}
	return true
}

// parseCommand turns one request line into a validated command. On
// rejection it returns a non-empty protocol error reply and no command is
// executed — the caller must not touch the store or the AOF. Pure, so the
// fuzz target can hammer it without a runtime.
func parseCommand(line string) (command, string) {
	parts := strings.SplitN(line, " ", 3)
	if len(parts) == 0 || parts[0] == "" {
		return command{}, "-ERR protocol: empty command\n"
	}
	cmd := command{Name: strings.ToUpper(parts[0])}
	switch cmd.Name {
	case "PING", "DBSIZE":
		if len(parts) != 1 {
			return command{}, "-ERR wrong number of arguments for '" + strings.ToLower(cmd.Name) + "'\n"
		}
		return cmd, ""
	case "SET":
		if len(parts) != 3 {
			return command{}, "-ERR wrong number of arguments for 'set'\n"
		}
		cmd.Key, cmd.Val = parts[1], parts[2]
		if !validKey(cmd.Key) {
			return command{}, "-ERR protocol: invalid key\n"
		}
		if !validValue(cmd.Val) {
			return command{}, "-ERR protocol: invalid value\n"
		}
		return cmd, ""
	case "GET", "DEL":
		if len(parts) != 2 {
			return command{}, "-ERR wrong number of arguments for '" + strings.ToLower(cmd.Name) + "'\n"
		}
		cmd.Key = parts[1]
		if !validKey(cmd.Key) {
			return command{}, "-ERR protocol: invalid key\n"
		}
		return cmd, ""
	default:
		if !validKey(parts[0]) {
			// Don't echo attacker-controlled control bytes back onto the wire.
			return command{}, "-ERR protocol: malformed command\n"
		}
		return command{}, "-ERR unknown command '" + parts[0] + "'\n"
	}
}

// Execute runs one command line and returns the protocol response. It is
// exported so workloads can also drive the store in-process. A line that
// fails validation gets a typed "-ERR protocol" reply and mutates
// nothing — neither the store nor the AOF.
func (a *App) Execute(s *unikernel.Sys, line string) string {
	cmd, errReply := parseCommand(line)
	if errReply != "" {
		return errReply
	}
	switch cmd.Name {
	case "PING":
		return "+PONG\n"
	case "SET":
		for p := 0; p < a.CPUWork; p++ {
			a.workSink = fnvFold(a.workSink, cmd.Val)
		}
		a.setValue(s, cmd.Key, []byte(cmd.Val))
		a.Sets++
		if err := a.appendAOF(s, "SET "+cmd.Key+" "+cmd.Val+"\n"); err != nil {
			return "-ERR aof: " + err.Error() + "\n"
		}
		return "+OK\n"
	case "GET":
		a.Gets++
		val, ok := a.getValue(s, cmd.Key)
		if !ok {
			return "$-1\n"
		}
		return "$" + strconv.Itoa(len(val)) + "\n" + string(val) + "\n"
	case "DEL":
		n := 0
		if a.delValue(s, cmd.Key) {
			n = 1
			a.Dels++
			if err := a.appendAOF(s, "DEL "+cmd.Key+"\n"); err != nil {
				return "-ERR aof: " + err.Error() + "\n"
			}
		}
		return ":" + strconv.Itoa(n) + "\n"
	case "DBSIZE":
		return ":" + strconv.Itoa(len(a.store)) + "\n"
	default:
		return "-ERR unknown command\n" // unreachable: parseCommand rejected it
	}
}

var _ unikernel.App = (*App)(nil)
