package redis

import (
	"strings"
	"testing"
)

// FuzzRESPFrame throws arbitrary request lines at the command parser —
// the network-boundary choke point every mutation passes before it may
// touch the store or the AOF. Properties: the parser never panics, every
// rejection is a well-formed single-line "-ERR" reply that reflects no
// attacker-controlled control bytes back onto the wire, and every
// accepted command carries a key and value the validators vouch for
// (so an accepted SET can never smuggle a second line into the AOF).
func FuzzRESPFrame(f *testing.F) {
	f.Add("PING")
	f.Add("SET k1 hello world")
	f.Add("GET k1")
	f.Add("DEL k1")
	f.Add("DBSIZE")
	f.Add("")
	f.Add("SET k v\nDEL other")
	f.Add("SET k\x01ey v")
	f.Add("\x1b[2JPING")
	f.Add("SET " + strings.Repeat("k", MaxKeyLen+1) + " v")
	f.Fuzz(func(t *testing.T, line string) {
		cmd, errReply := parseCommand(line)
		if errReply != "" {
			if !strings.HasPrefix(errReply, "-ERR") || !strings.HasSuffix(errReply, "\n") {
				t.Fatalf("reply %q is not a -ERR line", errReply)
			}
			if n := strings.IndexByte(errReply, '\n'); n != len(errReply)-1 {
				t.Fatalf("reply %q spans multiple lines", errReply)
			}
			for i := 0; i < len(errReply)-1; i++ {
				if errReply[i] < 0x20 || errReply[i] == 0x7F {
					t.Fatalf("reply %q reflects control byte 0x%02x", errReply, errReply[i])
				}
			}
			return
		}
		switch cmd.Name {
		case "PING", "DBSIZE":
			if cmd.Key != "" || cmd.Val != "" {
				t.Fatalf("%s accepted with operands: %+v", cmd.Name, cmd)
			}
		case "SET":
			if !validKey(cmd.Key) || !validValue(cmd.Val) {
				t.Fatalf("SET accepted invalid operands: %+v", cmd)
			}
		case "GET", "DEL":
			if !validKey(cmd.Key) {
				t.Fatalf("%s accepted invalid key: %+v", cmd.Name, cmd)
			}
		default:
			t.Fatalf("unknown verb %q accepted", cmd.Name)
		}
	})
}
