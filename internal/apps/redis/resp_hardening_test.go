package redis

import (
	"strings"
	"testing"

	"vampos/internal/core"
	"vampos/internal/unikernel"
)

// Regression tests for the RESP-side protocol hardening: every malformed
// shape the defense campaign injects at the network boundary gets a typed
// "-ERR protocol" reply and must mutate neither the store nor the AOF.

func TestParseCommandRejections(t *testing.T) {
	cases := []struct {
		name, line, wantSub string
	}{
		{"empty", "", "protocol: empty command"},
		{"key control byte", "SET k\x01ey v", "protocol: invalid key"},
		{"key DEL injection", "GET k\x0d", "protocol: invalid key"},
		{"key too long", "SET " + strings.Repeat("k", MaxKeyLen+1) + " v", "protocol: invalid key"},
		{"value CR injection", "SET k v\rDEL k", "protocol: invalid value"},
		{"value LF injection", "SET k v\nDEL k", "protocol: invalid value"},
		{"value too long", "SET k " + strings.Repeat("v", MaxValueLen+1), "protocol: invalid value"},
		{"verb control bytes", "\x1b[2JPING", "protocol: malformed command"},
		{"set arity", "SET k", "wrong number of arguments"},
		{"get arity", "GET", "wrong number of arguments"},
		{"ping arity", "PING extra", "wrong number of arguments"},
		{"unknown verb", "FLUSHALL", "unknown command"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd, errReply := parseCommand(tc.line)
			if errReply == "" {
				t.Fatalf("accepted %q as %+v", tc.line, cmd)
			}
			if !strings.Contains(errReply, tc.wantSub) {
				t.Fatalf("reply %q does not mention %q", errReply, tc.wantSub)
			}
			if !strings.HasPrefix(errReply, "-ERR") || !strings.HasSuffix(errReply, "\n") {
				t.Fatalf("reply %q is not a well-formed error line", errReply)
			}
		})
	}
}

func TestParseCommandAccepts(t *testing.T) {
	cmd, errReply := parseCommand("set k1 hello world") // value may contain spaces
	if errReply != "" {
		t.Fatal(errReply)
	}
	if cmd.Name != "SET" || cmd.Key != "k1" || cmd.Val != "hello world" {
		t.Fatalf("parsed %+v", cmd)
	}
	if _, errReply := parseCommand("PING"); errReply != "" {
		t.Fatal(errReply)
	}
}

// TestRejectedCommandMutatesNothing drives the full app: a rejected line
// must leave the store empty and the AOF unwritten — rejection happens
// before the mutation path, not after.
func TestRejectedCommandMutatesNothing(t *testing.T) {
	app := New()
	withRedis(t, core.DaSConfig(), app, func(s *unikernel.Sys, a *App) {
		for _, line := range []string{
			"SET k v\nDEL other", // AOF injection via embedded newline
			"SET k\x00ey v",      // NUL in key
			"SET " + strings.Repeat("k", MaxKeyLen+1) + " v",
		} {
			if resp := a.Execute(s, line); !strings.HasPrefix(resp, "-ERR protocol") {
				t.Fatalf("Execute(%.20q) = %q, want -ERR protocol", line, resp)
			}
		}
		if a.Sets != 0 || a.Keys() != 0 {
			t.Fatalf("store mutated by rejected commands: sets=%d keys=%d", a.Sets, a.Keys())
		}
		if size, _, err := s.Stat(AOFPath); err != nil || size != 0 {
			t.Fatalf("AOF touched by rejected commands: size=%d err=%v", size, err)
		}
		// A clean command still works afterwards.
		if resp := a.Execute(s, "SET k v"); resp != "+OK\n" {
			t.Fatalf("clean SET after rejects = %q", resp)
		}
	})
}

// TestCorruptedAOFEntriesSkippedOnReplay models in-domain tampering of
// durable state: flip a byte of the AOF into a control character and the
// reload must skip that entry rather than install a corrupted key.
func TestCorruptedAOFEntriesSkippedOnReplay(t *testing.T) {
	app := New()
	withRedis(t, core.DaSConfig(), app, func(s *unikernel.Sys, a *App) {
		if resp := a.Execute(s, "SET good v1"); resp != "+OK\n" {
			t.Fatal(resp)
		}
		if resp := a.Execute(s, "SET doomed v2"); resp != "+OK\n" {
			t.Fatal(resp)
		}
		// Tamper: corrupt the second entry's key byte into a control char.
		fd, err := s.Open(AOFPath, unikernel.ORdonly)
		if err != nil {
			t.Fatal(err)
		}
		raw, _, err := s.ReadNB(fd, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		_ = s.Close(fd)
		tampered := strings.Replace(string(raw), "doomed", "doo\x01ed", 1)
		if tampered == string(raw) {
			t.Fatalf("AOF %q does not contain the doomed entry", raw)
		}
		wfd, err := s.Open(AOFPath, unikernel.OCreate|unikernel.OWronly|unikernel.OTrunc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Write(wfd, []byte(tampered)); err != nil {
			t.Fatal(err)
		}
		_ = s.Close(wfd)
		// Reload into a fresh app instance (same Sys, fresh store).
		reloaded := &App{AOF: true, FsyncEvery: 1, Port: DefaultPort + 1}
		if err := s.StartApp(reloaded); err != nil {
			t.Fatal(err)
		}
		if reloaded.AOFReplayed != 1 {
			t.Fatalf("AOFReplayed = %d, want 1 (tampered entry skipped)", reloaded.AOFReplayed)
		}
		if _, ok := reloaded.getValue(s, "good"); !ok {
			t.Fatal("clean entry lost on replay")
		}
		for _, k := range []string{"doomed", "doo\x01ed"} {
			if _, ok := reloaded.getValue(s, k); ok {
				t.Fatalf("tampered key %q installed on replay", k)
			}
		}
	})
}
