package redis

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"vampos/internal/core"
	"vampos/internal/host"
	"vampos/internal/sched"
	"vampos/internal/unikernel"
)

func withRedis(t *testing.T, coreCfg core.Config, app *App, fn func(s *unikernel.Sys, a *App)) {
	t.Helper()
	coreCfg.MaxVirtualTime = time.Hour
	inst, err := unikernel.New(app.Profile(unikernel.Config{Core: coreCfg}))
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(func(s *unikernel.Sys) {
		if err := s.StartApp(app); err != nil {
			t.Errorf("start: %v", err)
			s.Stop()
			return
		}
		fn(s, app)
		s.Stop()
	}); err != nil {
		t.Fatal(err)
	}
}

// client is a minimal redis-protocol client over a peer connection.
type client struct {
	t    *testing.T
	th   *sched.Thread
	conn *host.PeerConn
}

func dialRedis(t *testing.T, s *unikernel.Sys, th *sched.Thread) *client {
	t.Helper()
	peer := s.NewPeer()
	conn, err := peer.Dial(th, DefaultPort, 2*time.Second)
	if err != nil {
		t.Fatalf("dial redis: %v", err)
	}
	return &client{t: t, th: th, conn: conn}
}

// cmd sends one command line and returns the first response line.
func (c *client) cmd(line string) string {
	c.t.Helper()
	if err := c.conn.Send(c.th, []byte(line+"\n")); err != nil {
		c.t.Fatalf("send %q: %v", line, err)
	}
	resp, err := c.conn.RecvLine(c.th, 2*time.Second)
	if err != nil {
		c.t.Fatalf("recv for %q: %v", line, err)
	}
	return strings.TrimRight(string(resp), "\n")
}

// get runs GET and returns (value, found).
func (c *client) get(key string) (string, bool) {
	head := c.cmd("GET " + key)
	if head == "$-1" {
		return "", false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(head, "$"))
	if err != nil {
		c.t.Fatalf("bad GET header %q", head)
	}
	body, err := c.conn.RecvExactly(c.th, n+1, 2*time.Second) // value + \n
	if err != nil {
		c.t.Fatalf("recv body: %v", err)
	}
	return string(body[:n]), true
}

func TestSetGetDelOverNetwork(t *testing.T) {
	withRedis(t, core.DaSConfig(), New(), func(s *unikernel.Sys, a *App) {
		c := dialRedis(t, s, s.Ctx().Thread())
		if got := c.cmd("PING"); got != "+PONG" {
			t.Fatalf("PING = %q", got)
		}
		if got := c.cmd("SET k1 hello"); got != "+OK" {
			t.Fatalf("SET = %q", got)
		}
		if v, ok := c.get("k1"); !ok || v != "hello" {
			t.Fatalf("GET k1 = %q, %v", v, ok)
		}
		if _, ok := c.get("missing"); ok {
			t.Fatal("GET missing found a value")
		}
		if got := c.cmd("DEL k1"); got != ":1" {
			t.Fatalf("DEL = %q", got)
		}
		if _, ok := c.get("k1"); ok {
			t.Fatal("GET after DEL found a value")
		}
		if got := c.cmd("DEL k1"); got != ":0" {
			t.Fatalf("second DEL = %q", got)
		}
		if got := c.cmd("BOGUS"); !strings.HasPrefix(got, "-ERR") {
			t.Fatalf("BOGUS = %q", got)
		}
	})
}

func TestAOFDurabilityAcrossFullReboot(t *testing.T) {
	app := New()
	withRedis(t, core.DaSConfig(), app, func(s *unikernel.Sys, a *App) {
		th := s.Ctx().Thread()
		c := dialRedis(t, s, th)
		for i := 0; i < 25; i++ {
			c.cmd("SET key" + strconv.Itoa(i) + " val" + strconv.Itoa(i))
		}
		c.cmd("DEL key3")
		if err := s.FullReboot(); err != nil {
			t.Fatalf("full reboot: %v", err)
		}
		if a.AOFReplayed != 26 {
			t.Fatalf("AOF replayed %d entries, want 26", a.AOFReplayed)
		}
		if a.Keys() != 24 {
			t.Fatalf("keys after AOF reload = %d, want 24", a.Keys())
		}
		c2 := dialRedis(t, s, th)
		if v, ok := c2.get("key7"); !ok || v != "val7" {
			t.Fatalf("key7 after reboot = %q, %v", v, ok)
		}
		if _, ok := c2.get("key3"); ok {
			t.Fatal("deleted key3 resurrected by AOF reload")
		}
	})
}

func TestValuesKeptInGuestMemory(t *testing.T) {
	withRedis(t, core.DaSConfig(), New(), func(s *unikernel.Sys, a *App) {
		c := dialRedis(t, s, s.Ctx().Thread())
		big := strings.Repeat("x", 4096)
		before := s.Instance().Runtime().ResidentBytes()
		for i := 0; i < 64; i++ {
			c.cmd("SET big" + strconv.Itoa(i) + " " + big)
		}
		after := s.Instance().Runtime().ResidentBytes()
		if after-before < 64*4096/2 {
			t.Fatalf("resident grew only %d bytes for 256 KiB of values", after-before)
		}
	})
}

func TestRedisSurvives9PFSFailure(t *testing.T) {
	// The Fig. 8 scenario in miniature: inject a 9PFS fail-stop while
	// Redis serves; VampOS reboots the component, the in-flight fsync
	// retries, and no request is lost.
	app := New()
	withRedis(t, core.DaSConfig(), app, func(s *unikernel.Sys, a *App) {
		c := dialRedis(t, s, s.Ctx().Thread())
		for i := 0; i < 5; i++ {
			c.cmd("SET warm" + strconv.Itoa(i) + " v")
		}
		// Make the next 9P fsync path crash inside 9PFS.
		inst := s.Instance()
		compI, _ := inst.Runtime().Component("9pfs")
		_ = compI
		injectPanicOnNext9PFSCall(t, s)
		if got := c.cmd("SET boom now"); got != "+OK" {
			t.Fatalf("SET across 9pfs crash = %q", got)
		}
		if v, ok := c.get("boom"); !ok || v != "now" {
			t.Fatalf("boom = %q, %v", v, ok)
		}
		rt := inst.Runtime()
		if rt.Stats().Failures != 1 {
			t.Fatalf("failures = %d, want 1", rt.Stats().Failures)
		}
		reboots := rt.Reboots()
		if len(reboots) != 1 || reboots[0].Group != "9pfs" {
			t.Fatalf("reboots = %+v", reboots)
		}
	})
}

// injectPanicOnNext9PFSCall arms a one-shot crash on the 9PFS component
// using the faults hook (a write-path call panics).
func injectPanicOnNext9PFSCall(t *testing.T, s *unikernel.Sys) {
	t.Helper()
	type crasher interface{ InjectCrashOnce(fn string) }
	comp, ok := s.Instance().Runtime().Component("9pfs")
	if !ok {
		t.Fatal("no 9pfs component")
	}
	cr, ok := comp.(crasher)
	if !ok {
		t.Skip("9pfs has no crash hook yet")
	}
	cr.InjectCrashOnce("uk_9pfs_write")
}
