package echo

import (
	"bytes"
	"testing"
	"time"

	"vampos/internal/core"
	"vampos/internal/unikernel"
)

func withEcho(t *testing.T, coreCfg core.Config, fn func(s *unikernel.Sys, a *App)) {
	t.Helper()
	coreCfg.MaxVirtualTime = time.Hour
	app := New()
	inst, err := unikernel.New(app.Profile(unikernel.Config{Core: coreCfg}))
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(func(s *unikernel.Sys) {
		if err := s.StartApp(app); err != nil {
			t.Errorf("start: %v", err)
			s.Stop()
			return
		}
		fn(s, app)
		s.Stop()
	}); err != nil {
		t.Fatal(err)
	}
}

func TestEchoRoundTrip(t *testing.T) {
	withEcho(t, core.DaSConfig(), func(s *unikernel.Sys, a *App) {
		th := s.Ctx().Thread()
		conn, err := s.NewPeer().Dial(th, DefaultPort, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		// The paper's Echo workload sends a 159-byte message.
		payload := bytes.Repeat([]byte("e"), 159)
		for i := 0; i < 10; i++ {
			if err := conn.Send(th, payload); err != nil {
				t.Fatal(err)
			}
			got, err := conn.RecvExactly(th, len(payload), time.Second)
			if err != nil || !bytes.Equal(got, payload) {
				t.Fatalf("round %d: %q, %v", i, got, err)
			}
		}
		conn.Close(th)
		if a.BytesEchoed != 10*159 {
			t.Fatalf("BytesEchoed = %d", a.BytesEchoed)
		}
		if a.Connections != 1 {
			t.Fatalf("Connections = %d", a.Connections)
		}
	})
}

func TestEchoProfileHasNoFS(t *testing.T) {
	app := New()
	cfg := app.Profile(unikernel.Config{Core: core.DaSConfig()})
	if cfg.FS || cfg.Sysinfo {
		t.Fatalf("echo profile = FS:%v Sysinfo:%v, want neither", cfg.FS, cfg.Sysinfo)
	}
	cfg.Core.MaxVirtualTime = time.Hour
	inst, err := unikernel.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(func(s *unikernel.Sys) {
		defer s.Stop()
		if err := s.StartApp(app); err != nil {
			t.Errorf("start without FS: %v", err)
			return
		}
		comps := inst.Runtime().Components()
		for _, c := range comps {
			if c == "9pfs" || c == "sysinfo" {
				t.Errorf("unexpected component %q linked", c)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestEchoSurvivesLWIPRejuvenation(t *testing.T) {
	withEcho(t, core.DaSConfig(), func(s *unikernel.Sys, a *App) {
		th := s.Ctx().Thread()
		conn, err := s.NewPeer().Dial(th, DefaultPort, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := conn.Send(th, []byte("abc")); err != nil {
				t.Fatal(err)
			}
			if _, err := conn.RecvExactly(th, 3, time.Second); err != nil {
				t.Fatalf("round %d: %v", i, err)
			}
			if err := s.Reboot("lwip"); err != nil {
				t.Fatalf("reboot %d: %v", i, err)
			}
		}
		if conn.WasReset() {
			t.Fatal("connection reset across LWIP rejuvenations")
		}
		conn.Close(th)
	})
}
