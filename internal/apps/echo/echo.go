// Package echo implements the paper's Echo application: a TCP server
// that returns every received byte (§VI). Its component profile is
// PROCESS, USER, NETDEV, TIMER, VFS, LWIP and VIRTIO — no file system.
package echo

import (
	"strconv"

	"vampos/internal/unikernel"
)

// DefaultPort is the port Echo listens on.
const DefaultPort = 7

// App is the Echo application.
type App struct {
	// Port overrides DefaultPort when non-zero.
	Port int

	// Stats
	Connections uint64
	BytesEchoed uint64
}

// New creates the Echo application.
func New() *App { return &App{} }

// Name implements unikernel.App.
func (a *App) Name() string { return "echo" }

// Profile returns the instance profile for Echo (paper §VI: seven
// components, no 9PFS, no SYSINFO).
func (a *App) Profile(coreCfg unikernel.Config) unikernel.Config {
	coreCfg.FS = false
	coreCfg.Net = true
	coreCfg.Sysinfo = false
	return coreCfg
}

// Main implements unikernel.App: bind, listen, and serve echo
// connections until the instance stops.
func (a *App) Main(s *unikernel.Sys) error {
	port := a.Port
	if port == 0 {
		port = DefaultPort
	}
	lfd, err := s.Socket()
	if err != nil {
		return err
	}
	if err := s.Bind(lfd, port); err != nil {
		return err
	}
	if err := s.Listen(lfd, 64); err != nil {
		return err
	}
	s.Go("echo/acceptor", func(as *unikernel.Sys) {
		for {
			cfd, err := as.Accept(lfd)
			if err != nil {
				return
			}
			a.Connections++
			as.Go("echo/conn"+strconv.Itoa(cfd), func(cs *unikernel.Sys) {
				a.serve(cs, cfd)
			})
		}
	})
	return nil
}

func (a *App) serve(s *unikernel.Sys, fd int) {
	defer func() { _ = s.Close(fd) }()
	for {
		data, eof, err := s.Recv(fd, 4096)
		if err != nil || eof {
			return
		}
		if _, err := s.Send(fd, data); err != nil {
			return
		}
		a.BytesEchoed += uint64(len(data))
	}
}
