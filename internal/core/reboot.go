package core

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"vampos/internal/defense"
	"vampos/internal/mem"
	"vampos/internal/msg"
	"vampos/internal/sched"
	"vampos/internal/trace"
)

// handleFailure runs on the message thread when a component handler
// panicked: attribute the failure, fail the in-flight call (retryable),
// discard its half-written log record, and start the reboot.
func (rt *Runtime) handleFailure(g *group, seq uint64, reason string) {
	rt.stats.failures.Add(1)
	victim := g.members[0]
	if pc := rt.pending[seq]; pc != nil {
		victim = pc.to
	}
	victim.failures.Add(1)
	var detectParent trace.SpanID
	if pc := rt.pending[seq]; pc != nil {
		detectParent = pc.span
	}
	if tr := rt.tracer; tr != nil {
		tr.Instant(detectParent, trace.KindDetect, victim.desc.Name, "failure", reason)
	}
	if rt.onComponentFailure != nil {
		rt.onComponentFailure(victim.desc.Name, reason)
	}
	var failFn string
	var failArgs msg.Args
	if pc := rt.pending[seq]; pc != nil && !pc.done {
		failFn, failArgs = pc.fn, pc.args
		if pc.rec != nil {
			victim.domain.Log().DropRecord(pc.rec)
			pc.rec = nil
		}
		pc.rebooted = true
		rt.finishCall(pc, nil, "")
	}
	if g.failedTwice || g.rebooting {
		// Failure while already restoring: deterministic fault,
		// fail-stop the group (§II-B).
		g.failedTwice = true
		g.rebooting = false
		if tr := rt.tracer; tr != nil {
			tr.EndErr(g.rebootSpan, "fail-stop: "+reason)
			g.rebootSpan, g.quiesceSpan = 0, 0
		}
		rt.failAllPending(g, false)
		rt.notifyFailStop(g)
		return
	}
	// Rung 1 of the recovery ladder: a failure attributable to one
	// session of a session-bearing component evicts and replays just that
	// session. Unattributable failures take rung 2, the component reboot.
	if rt.tryMicroreboot(g, failFn, failArgs, "failure: "+reason, false, detectParent) {
		return
	}
	rt.beginReboot(g, "failure: "+reason, false, detectParent)
}

// beginReboot transitions a group into restoration. The old worker (if
// still alive) is killed; a fresh worker thread performs checkpoint
// restore and log replay before serving the mailbox again, so queued
// requests are delayed, not lost. parent anchors the reboot's trace
// span in the causal chain that triggered it (zero for an unanchored
// root).
func (rt *Runtime) beginReboot(g *group, reason string, killWorker bool, parent trace.SpanID) {
	g.rebooting = true
	g.rebootReason = reason
	g.rebootStartV = rt.clk.Elapsed()
	//vampos:allow detclock -- component-reboot latency is reported in wall time alongside virtual time (RebootRecord.WallDuration); the reading never feeds back into the simulation
	g.rebootStartW = time.Now()
	if tr := rt.tracer; tr != nil {
		// The reboot span opens at the same clock reading rebootStartV
		// captured, so the trace-derived duration and the RebootRecord
		// agree exactly.
		g.rebootSpan = tr.Begin(parent, trace.KindReboot, g.name, "", reason)
		g.quiesceSpan = tr.Begin(g.rebootSpan, trace.KindPhase, g.name, "", trace.PhaseQuiesce)
	}
	if killWorker && g.worker != nil && g.worker.t.State() != sched.StateDone {
		g.worker.t.Kill()
	}
	rt.spawnWorker(g, true)
}

// Reboot proactively reboots the named component (and, if merged, its
// whole group) from any application or driver thread: the software
// rejuvenation entry point. It waits for the group to go idle, performs
// the reboot, and returns once the group serves again.
func (c *Ctx) Reboot(name string) error {
	return c.rebootAs(name, "proactive")
}

// rebootAs is Reboot with an explicit RebootRecord reason, so adaptive
// rejuvenation ("rejuvenation") is distinguishable from manual proactive
// reboots ("proactive") in records, traces and oracles.
func (c *Ctx) rebootAs(name, reason string) error {
	rt := c.rt
	tc, ok := rt.comps[name]
	if !ok {
		return &UnknownComponentError{Name: name}
	}
	if !rt.cfg.MessagePassing {
		return fmt.Errorf("core: reboot of %q requires message passing (vanilla Unikraft can only reboot whole images)", name)
	}
	g := tc.group
	for _, m := range g.members {
		if m.desc.Unrebootable {
			return fmt.Errorf("%w: %s shares state with the host", ErrUnrebootable, m.desc.Name)
		}
	}
	if g.failedTwice {
		return fmt.Errorf("%w: %s", ErrComponentFailed, name)
	}
	if c.comp != nil && c.comp.group == g {
		return fmt.Errorf("core: component %q cannot reboot itself", name)
	}
	// Wait until the group is between requests. Cooperative scheduling
	// makes the check-and-set race-free: nothing runs between the check
	// and beginReboot.
	for g.rebooting || g.currentSeq != 0 {
		c.th.Sleep(10 * time.Microsecond)
	}
	rt.beginReboot(g, reason, true, c.span)
	for g.rebooting {
		c.th.Sleep(10 * time.Microsecond)
	}
	if g.failedTwice {
		return fmt.Errorf("%w: %s", ErrComponentFailed, name)
	}
	return nil
}

// restoreGroup rebuilds every member of a group on the new worker
// thread: memory image (checkpoint or cold init), encapsulated log
// replay in global sequence order, then runtime-state installation.
func (rt *Runtime) restoreGroup(t *sched.Thread, g *group) error {
	tr := rt.tracer
	var phaseSpan trace.SpanID
	if tr != nil {
		// The new worker's first dispatch ends quiescence and starts the
		// restore phase. Phases tile the reboot span exactly, so the
		// phase sum equals the reboot's total duration.
		tr.End(g.quiesceSpan)
		g.quiesceSpan = 0
		phaseSpan = tr.Begin(g.rebootSpan, trace.KindPhase, g.name, "", trace.PhaseRestore)
	}
	replayed := 0
	restoredPages := 0
	// Defense bookkeeping for this restore: the taint watermark honoured
	// (zero when none), the epoch seq actually restored for the tainted
	// member, images newly quarantined, and the archived record views
	// that re-enter replay because the live log no longer holds them.
	defPol := rt.cfg.Defense
	var taintW, restoredEpochSeq uint64
	var quarantinedNow int
	var taintedComps []*component
	var extraComps []*component
	var extraViews []msg.RecordView
	// Note: the group mailbox is untouched — requests queued during the
	// reboot are delayed, not lost (the Table V property).
	for _, c := range g.members {
		coldBoot := false
		// What the arena reflects from here on is governed by the log's own
		// seq bookkeeping (replayed records, epoch seq); the live-execution
		// high-water mark belongs to the dead incarnation.
		c.lastExecSeq = 0
		if defPol.Enabled && c.taint != nil && c.images != nil {
			// Taint-aware rollback: quarantine every image the watermark
			// poisons, then land on the newest image strictly predating it.
			// The suspect log tail is dropped — those calls ran against (or
			// after) a tampered arena and must not be replayed — and the
			// un-tainted slice that only the archive still holds re-enters
			// replay below.
			w := c.taint.Watermark
			n := c.images.QuarantineFrom(w)
			quarantinedNow += n
			rt.stats.quarantined.Add(uint64(n))
			sel, ok := c.images.SelectBefore(w)
			if !ok {
				return fmt.Errorf("core: taint rollback of %q: no retained checkpoint predates watermark %d (%d images quarantined)",
					c.desc.Name, w, c.images.QuarantinedCount())
			}
			c.checkpoint = sel.Image.(*checkpoint)
			c.domain.Log().DropFrom(w)
			c.domain.Log().RewindEpoch(sel.Meta.EpochSeq)
			// Purge the archive of the poisoned suffix the same way DropFrom
			// purged the live log: records at or past the watermark must
			// never re-enter any future replay either.
			kept := c.archive[:0]
			for _, v := range c.archive {
				if v.Seq < w {
					kept = append(kept, v)
				}
			}
			for i := len(kept); i < len(c.archive); i++ {
				c.archive[i] = msg.RecordView{}
			}
			c.archive = kept
			for _, v := range c.archive {
				if v.Seq > sel.Meta.EpochSeq {
					extraComps = append(extraComps, c)
					extraViews = append(extraViews, v)
				}
			}
			if taintW == 0 || w < taintW {
				taintW = w
				restoredEpochSeq = sel.Meta.EpochSeq
			}
			taintedComps = append(taintedComps, c)
			rt.stats.rollbacks.Add(1)
			if tr != nil {
				tr.Instant(g.rebootSpan, trace.KindDetect, c.desc.Name, "rollback",
					fmt.Sprintf("watermark=%d restored-epoch-seq=%d quarantined=%d detector=%s",
						w, sel.Meta.EpochSeq, n, c.taint.Detector))
			}
		}
		if c.desc.Stateful && c.checkpoint != nil {
			if err := rt.memry.Restore(c.checkpoint.memSnap); err != nil {
				return err
			}
			c.heap = c.checkpoint.heap.Clone()
			// Charge what the restore actually copies: the image's resident
			// pages. Absent pages restore as dropped frames (zeros) for
			// free, so a mostly-untouched arena no longer bills its full
			// span on every reboot.
			restoredPages += c.checkpoint.memSnap.Resident
			t.Charge(time.Duration(c.checkpoint.memSnap.Resident) * rt.costs.SnapshotPerPage)
			if ss, ok := c.comp.(StateSaver); ok && c.checkpoint.control != nil {
				if err := ss.RestoreState(c.checkpoint.control); err != nil {
					return fmt.Errorf("core: restore state of %q: %w", c.desc.Name, err)
				}
			}
		} else {
			// Cold re-initialisation: scrub the arena so no aged state
			// survives, then boot the component afresh.
			if err := rt.memry.Zero(c.heapBase, c.heapPages*mem.PageSize); err != nil {
				return err
			}
			heap, err := mem.NewBuddy(c.heapBase, int64(c.heapPages)*mem.PageSize)
			if err != nil {
				return err
			}
			c.heap = heap
			if cr, ok := c.comp.(ColdResetter); ok {
				cr.Reset()
			}
			t.Charge(rt.costs.ColdInit)
			coldBoot = true
			if defPol.Enabled && defPol.Rerandomize {
				// Cold members re-randomize before Init so even the boot
				// allocations land on a fresh layout.
				c.heap.Reseed(defense.RebootSeed(defPol.Seed, c.desc.Name, c.reboots.Load()))
			}
			ctx := &Ctx{rt: rt, comp: c, th: t, span: phaseSpan}
			if err := c.comp.Init(ctx); err != nil {
				return fmt.Errorf("core: re-init %q: %w", c.desc.Name, err)
			}
		}
		if defPol.Enabled && defPol.Rerandomize && !coldBoot {
			// Checkpoint-restored members keep their image's allocation map
			// (live blocks cannot move — the restored bytes hold pointers
			// into them), but every allocation from here on draws from this
			// reboot's seed: replay allocations, free-list evolution and
			// future block placement differ each incarnation, and the seed
			// itself is part of the layout fingerprint.
			c.heap.Reseed(defense.RebootSeed(defPol.Seed, c.desc.Name, c.reboots.Load()))
		}
	}
	if tr != nil {
		tr.End(phaseSpan)
		phaseSpan = tr.Begin(g.rebootSpan, trace.KindPhase, g.name, "", trace.PhaseReplay)
	}
	// Encapsulated restoration: replay each member's retained log in
	// global sequence order so cross-member orderings inside a merged
	// group are preserved.
	type replayItem struct {
		c *component
		v msg.RecordView
	}
	var items []replayItem
	for _, c := range g.members {
		if !c.desc.Stateful {
			continue
		}
		views, err := c.domain.Log().Entries()
		if err != nil {
			return err
		}
		cover := c.domain.Log().EpochSeq()
		for _, v := range views {
			if v.Seq <= cover {
				// Already in the restored image: a record that was still open
				// when its covering truncation ran closes into the log below
				// the epoch seq; replaying it would double-apply the call.
				continue
			}
			items = append(items, replayItem{c: c, v: v})
		}
	}
	// Archived records re-entering replay after a rollback: the slice
	// between the restored (older) image and the watermark that the live
	// log no longer holds. The global sort below interleaves them with
	// the retained tail in original sequence order.
	for i, c := range extraComps {
		items = append(items, replayItem{c: c, v: extraViews[i]})
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].v.Seq < items[j].v.Seq })
	for i := range items {
		it := items[i]
		h, ok := it.c.exports[it.v.Fn]
		if !ok {
			return &UnknownFunctionError{Component: it.c.desc.Name, Fn: it.v.Fn}
		}
		rs := &replayState{grp: g, rec: &items[i].v}
		ctx := &Ctx{rt: rt, comp: it.c, th: t, replay: rs, span: phaseSpan}
		rets, err, pv, panicked := rt.invoke(h, ctx, it.v.Args)
		if panicked {
			return fmt.Errorf("core: replay of %s.%s panicked: %v", it.c.desc.Name, it.v.Fn, pv)
		}
		if de, ok := err.(*ReplayDivergenceError); ok {
			return de
		}
		if rs.diverged != nil {
			// The component issued a call the log cannot answer — even if
			// it swallowed the error, the restored state is untrusted.
			return rs.diverged
		}
		if rt.cfg.ReplayRetCheck && !it.v.Synthetic && it.v.Class != msg.ClassCanceler {
			// Opt-in determinism oracle: a replayed call must reproduce the
			// results the original produced, or the restored state cannot
			// be trusted. Synthetic records are exempt — they are
			// state-install commands, not calls with a logged outcome.
			// Cancelers are exempt too: they stay in the log only to
			// reproduce resource numbering, and when the session they close
			// was created on the unlogged data path (an accepted
			// connection) replay legitimately answers "already gone" —
			// idempotent dissolution, not corruption.
			if de := replayRetDivergence(it.c.desc.Name, &it.v, rets, err); de != nil {
				if tr != nil {
					tr.Instant(phaseSpan, trace.KindDetect, it.c.desc.Name, "replay-divergence", de.Error())
				}
				return de
			}
		}
		t.Charge(rt.costs.ReplayPerEntry)
		it.c.domain.Log().MarkReplayed(1)
		// Replay is execution: the arena now reflects this call, and the
		// next checkpoint (the post-rollback re-square in particular, whose
		// replayed tail may live only in the archive) must cover it.
		it.c.lastExecSeq = it.v.Seq
		replayed++
	}
	if tr != nil {
		tr.End(phaseSpan)
		phaseSpan = tr.Begin(g.rebootSpan, trace.KindPhase, g.name, "", trace.PhaseResume)
	}
	// Runtime data that replay cannot regenerate (LWIP seq/ACK numbers).
	for _, c := range g.members {
		rk, ok := c.comp.(RuntimeKeeper)
		if !ok || c.runtimeState == nil {
			continue
		}
		ctx := &Ctx{rt: rt, comp: c, th: t, span: phaseSpan}
		if err := rk.InstallRuntimeState(ctx, c.runtimeState); err != nil {
			return fmt.Errorf("core: install runtime state of %q: %w", c.desc.Name, err)
		}
	}
	// Defense epilogue: re-square every tainted member around the
	// rolled-back state — a fresh capture at this quiescent point becomes
	// the new latest image (ranked below the quarantined ones by epoch
	// seq), the replayed prefix folds into it, and a fresh seal makes the
	// post-tamper host stamps the new clean baseline. Then fingerprint
	// every member's (re-randomized) arena layout.
	for _, c := range taintedComps {
		if err := rt.checkpointComponent(t, c); err != nil {
			return fmt.Errorf("core: post-rollback checkpoint of %q: %w", c.desc.Name, err)
		}
		c.taint = nil
		rt.captureSeal(c)
	}
	var fps []uint64
	if defPol.Enabled {
		fps = make([]uint64, len(g.members))
		for i, c := range g.members {
			fp := c.heap.Fingerprint()
			c.layoutFP.Store(fp)
			fps[i] = fp
		}
	}
	names := make([]string, len(g.members))
	for i, c := range g.members {
		c.reboots.Add(1)
		names[i] = c.desc.Name
	}
	rt.recMu.Lock()
	rt.reboots = append(rt.reboots, RebootRecord{
		Group:      g.name,
		Components: names,
		Reason:     g.rebootReason,
		// The worker's own time view: during a buffered round the global
		// clock still reads the round base, but the restore's charges are
		// this thread's and belong in its reboot latency.
		VirtualDuration: t.Elapsed() - g.rebootStartV,
		//vampos:allow detclock -- closes the wall-time measurement opened in beginReboot; presentation-only
		WallDuration:       time.Since(g.rebootStartW),
		ReplayedEntries:    replayed,
		RestoredPages:      restoredPages,
		At:                 rt.clk.At(t.Elapsed()),
		TaintWatermark:     taintW,
		RestoredEpochSeq:   restoredEpochSeq,
		QuarantinedImages:  quarantinedNow,
		LayoutFingerprints: fps,
	})
	rt.recMu.Unlock()
	// Rung-2 reconciliation: the encapsulated replay rebuilt every
	// session the log preserved, so escalated/recovering sub-resources
	// observe Live again.
	for _, c := range g.members {
		rt.sessions.ComponentRecovered(c.desc.Name)
	}
	if tr != nil {
		// Close resume and the reboot at the same clock reading the
		// RebootRecord captured: the trace-derived timeline and the
		// record can never disagree.
		tr.End(phaseSpan)
		tr.EndErr(g.rebootSpan, "ok")
		g.rebootSpan = 0
	}
	return nil
}

// replayRetDivergence compares a replayed call's outcome against the
// logged one, byte-for-byte over the encoded results. Encoding both
// sides through the message codec sidesteps any-typed comparison
// pitfalls (ints decoded as their original widths, []byte identity):
// two results are the same iff they transport the same.
func replayRetDivergence(comp string, v *msg.RecordView, rets msg.Args, err error) *ReplayDivergenceError {
	de := &ReplayDivergenceError{Component: comp, WantFn: v.Fn, GotFn: v.Fn, RetMismatch: true, Seq: v.Seq}
	if got := errnoString(err); got != v.Err {
		de.Detail = fmt.Sprintf("logged error %q, replay returned %q", v.Err, got)
		return de
	}
	wantB, werr := msg.EncodeArgs(v.Rets)
	gotB, gerr := msg.EncodeArgs(rets)
	if werr != nil || gerr != nil {
		de.Detail = fmt.Sprintf("result encoding failed (logged: %v, replay: %v)", werr, gerr)
		return de
	}
	if !bytes.Equal(wantB, gotB) {
		de.Detail = fmt.Sprintf("logged rets %v, replay produced %v", v.Rets, rets)
		return de
	}
	return nil
}

// watchdogLoop is the hang detector: a component whose current call has
// been processing longer than the threshold is declared hung and
// rebooted (paper §V-A, threshold 1.0 s).
func (rt *Runtime) watchdogLoop(t *sched.Thread) {
	for !rt.stopped {
		t.Sleep(rt.cfg.WatchdogPeriod)
		if rt.cfg.MaxVirtualTime > 0 && rt.clk.Elapsed() > rt.cfg.MaxVirtualTime {
			rt.Stop()
			return
		}
		nowV := rt.clk.Elapsed()
		for _, g := range rt.groups {
			if g.rebooting || g.failedTwice || g.currentSeq == 0 {
				continue
			}
			if nowV-g.busySinceV <= rt.cfg.HangThreshold {
				continue
			}
			// Hang attribution: a group whose current handler is blocked
			// on an outstanding call into another group is a victim of
			// downstream latency, not hung itself. Skip it — the deepest
			// busy group trips the detector and only that one reboots,
			// keeping hang recovery contained to the faulty component.
			// (A true wait cycle can never form: calls only flow along
			// the dependency order, so the deepest group has no
			// outstanding downstream call and is always detected.)
			if rt.awaitingDownstream(g) {
				continue
			}
			rt.stats.hangs.Add(1)
			seq := g.currentSeq
			victim := g.members[0]
			if pc := rt.pending[seq]; pc != nil {
				victim = pc.to
			}
			victim.failures.Add(1)
			var detectParent trace.SpanID
			if pc := rt.pending[seq]; pc != nil {
				detectParent = pc.span
			}
			if tr := rt.tracer; tr != nil {
				tr.Instant(detectParent, trace.KindDetect, victim.desc.Name, "hang",
					fmt.Sprintf("busy %v > threshold %v", nowV-g.busySinceV, rt.cfg.HangThreshold))
			}
			if rt.onComponentFailure != nil {
				rt.onComponentFailure(victim.desc.Name, "hang")
			}
			var failFn string
			var failArgs msg.Args
			if pc := rt.pending[seq]; pc != nil && !pc.done {
				failFn, failArgs = pc.fn, pc.args
				if pc.rec != nil {
					victim.domain.Log().DropRecord(pc.rec)
					pc.rec = nil
				}
				pc.rebooted = true
				rt.finishCall(pc, nil, "")
			}
			g.currentSeq = 0
			g.curRec = nil
			g.curLog = nil
			// Hangs attribute to sessions the same way crashes do; the
			// stuck worker is killed either way.
			if !rt.tryMicroreboot(g, failFn, failArgs, "hang", true, detectParent) {
				rt.beginReboot(g, "hang", true, detectParent)
			}
			// One hang per sweep: resolving this group's inbound call wakes
			// blocked callers, but they only re-enter awaitingDownstream
			// state once scheduled. Deferring further verdicts to the next
			// sweep (one period away, well under the threshold) keeps those
			// callers from being misattributed as hung themselves.
			break
		}
	}
}

// awaitingDownstream reports whether the group's current handler has an
// outstanding call into another group still in flight. Such a group is
// blocked, not hung: the watchdog must attribute the hang to the
// deepest busy group only.
func (rt *Runtime) awaitingDownstream(g *group) bool {
	//vampos:allow detrange -- pure existence test: any-match over the pending set is the same boolean in every iteration order, and nothing else runs in the body
	for _, pc := range rt.pending {
		if !pc.done && pc.fromGrp == g && pc.to.group != g {
			return true
		}
	}
	return false
}

// SetFailureObserver registers fn to be told about every detected
// component failure (experiments use it to timestamp injections).
func (rt *Runtime) SetFailureObserver(fn func(component, reason string)) {
	rt.onComponentFailure = fn
}
