package core

import (
	"fmt"
	//vampos:allow schedonly -- failure/reboot counters are snapshotted by ComponentStats from arbitrary goroutines (campaign workers) while the runtime increments them
	"sync/atomic"
	"time"

	"vampos/internal/ckpt"
	"vampos/internal/defense"
	"vampos/internal/mem"
	"vampos/internal/msg"
	"vampos/internal/trace"
)

// Handler is one function a component exposes at its interface. Handlers
// run on the component's thread (or on the caller's thread in vanilla /
// merged configurations) and must not retain args past their return.
type Handler func(ctx *Ctx, args msg.Args) (msg.Args, error)

// Descriptor declares a component's static properties to the runtime.
type Descriptor struct {
	// Name is the component's registration name ("vfs", "lwip", …).
	Name string
	// Stateful components get function-call logging, checkpointing and
	// encapsulated restoration; stateless ones reboot by plain re-init.
	Stateful bool
	// Checkpoint selects checkpoint-based initialization (§V-E): restore
	// the post-boot memory image instead of re-running Init, for
	// components whose Init has side effects on other components.
	Checkpoint bool
	// Unrebootable marks components whose state is shared with the host
	// (VIRTIO): the reboot manager refuses to restart them (§VIII).
	Unrebootable bool
	// HeapPages is the component arena size in pages (power of two).
	HeapPages int
	// DomainPages is the message-domain size in pages (power of two).
	DomainPages int
	// Deps lists the components this one sends messages to; the
	// dependency-aware scheduler derives its correlation from the actual
	// message flow, so Deps is documentation plus Table I metadata.
	Deps []string
}

// Component is one unikernel component (Table I).
type Component interface {
	// Describe returns the component's static descriptor. It must be
	// constant for the component's lifetime.
	Describe() Descriptor
	// Init boots the component. It runs on the component's own thread
	// and may call already-booted components through ctx.
	Init(ctx *Ctx) error
	// Exports returns the component's message interface. The returned
	// map must be constant for the component's lifetime.
	Exports() map[string]Handler
}

// StateSaver is implemented by stateful components whose control state
// (fd tables, socket tables…) lives in Go structs rather than the arena;
// the checkpoint mechanism saves and restores it alongside the memory
// snapshot.
type StateSaver interface {
	// SaveState serialises control state.
	SaveState() ([]byte, error)
	// RestoreState replaces control state from a SaveState blob.
	RestoreState(p []byte) error
}

// ColdResetter is implemented by components that keep control state in Go
// structs but reboot by cold re-init: the reboot manager calls Reset
// before re-running Init so no aged state survives.
type ColdResetter interface {
	Reset()
}

// LogPolicy describes how one exported function is logged for
// encapsulated restoration.
type LogPolicy struct {
	// Classify maps a completed call to its session and shrink class.
	// It sees the arguments, results and transported error. A nil
	// Classify logs the call as durable with no session.
	Classify func(args, rets msg.Args, callErr error) (msg.SessionID, msg.Class)
	// KeepFailed retains records of calls that returned an error. The
	// default (false) drops them: a failed call changed no state, and
	// polling patterns (EAGAIN accept/recv) would otherwise flood the log.
	KeepFailed bool
}

// LogPolicyProvider is implemented by stateful components. Only functions
// present in the returned map are logged; state-unchanged functions
// (fstat-style reads) are simply omitted, which is the paper's "skip
// functions that do not change the component states".
type LogPolicyProvider interface {
	LogPolicies() map[string]LogPolicy
}

// SessionResolver is implemented by session-bearing components that
// support fault-to-session attribution: given an inbound call's function
// and arguments, name the session the call operates on. Unlike
// LogPolicy.Classify this runs *before* the handler (at failure time the
// results never existed), so it can only use argument-derived sessions —
// openers, whose session id is minted by the return value, are
// inherently unattributable and recover at the component rung.
type SessionResolver interface {
	// SessionOf returns the session an inbound call touches, or "" when
	// the call is not session-scoped (or the session is not derivable
	// from the arguments).
	SessionOf(fn string, args msg.Args) msg.SessionID
	// SessionFns lists the exported functions whose session is derivable
	// from arguments — the component's per-session fault sites. Must be
	// a subset of Exports.
	SessionFns() []string
}

// SessionEvictor is implemented by session-bearing components that
// support session microreboots: remove one session's live state from
// the running component so that replaying the session's log slice
// rebuilds it from scratch. Eviction must not disturb other sessions or
// downstream components — the replayed opener feeds its outbound calls
// from the log, so whatever downstream resources the session holds
// (a backing fid, an lwip socket under a vfs fd) must stay live.
// Returning an error refuses the eviction and escalates the failure to
// a whole-component reboot.
type SessionEvictor interface {
	EvictSession(ctx *Ctx, session msg.SessionID) error
}

// Compactor is implemented by components that support threshold-driven
// log compaction (§V-F): when the log exceeds the configured threshold
// the runtime invokes CompactLog, which may replace entry runs with
// synthetic state-install entries.
type Compactor interface {
	CompactLog(log *msg.Log) error
}

// RuntimeKeeper is implemented by components that must persist runtime
// data that replay cannot regenerate — the paper's LWIP sequence/ACK
// numbers. The component pushes updates with Ctx.SaveRuntimeState; after
// replay the reboot manager hands the latest value to InstallRuntimeState.
type RuntimeKeeper interface {
	InstallRuntimeState(ctx *Ctx, state msg.Args) error
}

// Durable is the classification for calls that stay in the log until
// their session disappears. Exported so component policies read naturally.
func Durable(msg.Args, msg.Args, error) (msg.SessionID, msg.Class) {
	return "", msg.ClassDurable
}

// component is the runtime's per-component record.
type component struct {
	comp     Component
	desc     Descriptor
	exports  map[string]Handler
	policies map[string]LogPolicy
	group    *group

	heapBase  mem.Addr
	heapPages int
	heap      *mem.Buddy
	domain    *msg.Domain

	checkpoint   *checkpoint
	runtimeState msg.Args

	// tracker carries the incremental-checkpoint cadence and statistics;
	// nil for components that are not checkpoint-eligible or when the
	// runtime is not message-passing. Touched only under the cooperative
	// scheduler baton.
	tracker *ckpt.Tracker

	// Defense state (all nil/zero unless Config.Defense is enabled and the
	// component is checkpoint-eligible; touched only under the baton
	// except layoutFP, which oracles read from campaign goroutines).
	//
	// images retains recent checkpoint images so taint-aware rollback can
	// land strictly before a watermark; archive keeps decoded views of
	// truncated log records still covered by a retained image, so the
	// un-tainted slice between an older image and the watermark remains
	// replayable; seal is the arena's host-write stamp capture from the
	// last clean quiescent verification; taint carries a pending detection
	// the next restore must honour.
	images    *ckpt.History
	archive   []msg.RecordView
	seal      *defense.Seal
	sealCalls int
	taint     *defense.Taint
	layoutFP  atomic.Uint64
	// lastExecSeq is the seq of the newest inbound call whose handler has
	// completed on this component. At a quiescent point the just-finished
	// call's log record is still open (EndInbound runs on the message
	// thread), so MaxCompletedSeq lags one call behind what the arena
	// already reflects — seals use this to cover that call too. Reset at
	// restore: replayed state is covered by the log's own seq bookkeeping.
	lastExecSeq uint64

	// fallback is the §VIII multi-version alternate implementation.
	fallback     Component
	fallbackUsed bool

	// failures, reboots and micro are atomics because ComponentStats
	// snapshots them from arbitrary goroutines while the runtime
	// increments them.
	failures atomic.Uint64
	reboots  atomic.Uint64
	micro    atomic.Uint64 // completed session microreboots

	// calls/errs/busyV are the aging sensors' raw inputs: completed
	// inbound calls, those that returned an error, and the cumulative
	// virtual time their handlers ran. Atomics for the same reason as
	// failures/reboots. Replayed calls during restoration do not count —
	// replay latency is recovery cost, not service drift.
	calls atomic.Uint64
	errs  atomic.Uint64
	busyV atomic.Int64 // virtual nanoseconds
}

// checkpoint is the post-init image used by checkpoint-based
// initialization.
type checkpoint struct {
	memSnap *mem.Snapshot
	heap    *mem.Buddy // allocator metadata at snapshot time; cloned on use
	control []byte
	takenAt time.Time
}

// group is a scheduling unit: one thread, one protection key, one
// mailbox. An unmerged component forms a singleton group; merging (§V-F)
// puts several components into one group.
type group struct {
	name    string
	members []*component
	key     mem.Key
	mailbox *msg.Domain
	// shard is the group's shard ordinal under the sharded-baton engine
	// (assigned in buildGroups; meaningless while Config.Shards == 0).
	shard int

	worker      *workerThread
	rebooting   bool
	currentSeq  uint64 // seq of the call being handled, 0 if idle
	busySinceV  time.Duration
	failedTwice bool // deterministic fault: fail-stop (§II-B)

	// curRec/curLog locate the log record of the inbound call the group
	// is currently handling; outbound return values append there.
	curRec *msg.Record
	curLog *msg.Log

	// reboot bookkeeping for the RebootRecord emitted on completion
	rebootReason string
	rebootStartV time.Duration
	rebootStartW time.Time
	// rebootSpan/quiesceSpan are the in-flight trace spans of the
	// current reboot (zero when tracing is off).
	rebootSpan  trace.SpanID
	quiesceSpan trace.SpanID

	// failStopNotified marks that the graceful-termination handler ran.
	failStopNotified bool

	// micro, when non-nil, makes the next worker restore session-granular:
	// evict one session and replay its log slice instead of restoring the
	// whole group (rung 1 of the recovery ladder). Cleared by the worker
	// on completion or escalation.
	micro *microTask
}

func (g *group) member(name string) *component {
	for _, c := range g.members {
		if c.desc.Name == name {
			return c
		}
	}
	return nil
}

func (g *group) String() string { return fmt.Sprintf("group(%s)", g.name) }
