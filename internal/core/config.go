package core

import (
	"time"

	"vampos/internal/aging"
	"vampos/internal/ckpt"
	"vampos/internal/defense"
)

// SchedPolicy selects the component-thread scheduling policy.
type SchedPolicy uint8

// Scheduling policies (paper §V-C).
const (
	// PolicyRoundRobin rotates through every ready thread; idle
	// components poll their mailboxes. This is the VampOS-Noop baseline.
	PolicyRoundRobin SchedPolicy = iota + 1
	// PolicyDependencyAware prefers the message thread and the message's
	// receiver at every hop; idle components block instead of polling.
	PolicyDependencyAware
)

func (p SchedPolicy) String() string {
	switch p {
	case PolicyRoundRobin:
		return "round-robin"
	case PolicyDependencyAware:
		return "dependency-aware"
	default:
		return "unknown"
	}
}

// Config selects a runtime configuration. The paper's five experimental
// configurations map onto it via the constructors below.
type Config struct {
	// MessagePassing turns on component threads, message domains,
	// logging and protection. Off, the runtime is vanilla Unikraft:
	// direct function calls on the caller's context.
	MessagePassing bool
	// Policy selects the scheduler policy (message-passing mode only).
	Policy SchedPolicy
	// Merges lists component groups that share one thread, one key and
	// one mailbox (§V-F). Each inner slice is one merged group.
	Merges [][]string
	// Shards enables the sharded-baton round engine with this many
	// runner goroutines (message-passing mode only). Zero — the default —
	// keeps the paper's single global baton bit-for-bit. Any value >= 1
	// switches to deterministic parallel rounds; by construction the
	// observable behaviour is identical for every positive shard count,
	// so Shards only decides how much real hardware the rounds may use.
	Shards int
	// ShardOf overrides the shard ordinal of named component groups.
	// Groups default to ordinal 1 + registration index (application
	// threads run on ordinal 0); groups that share mutable state outside
	// the message-passing boundary must be given equal ordinals so they
	// co-locate on one runner at every shard count.
	ShardOf map[string]int
	// LogShrinkThreshold triggers component log compaction when a log
	// exceeds this many entries. The paper's default is 100.
	LogShrinkThreshold int
	// LogShrinkEnabled turns session-aware shrinking on. The Table III
	// "normal" column is measured with it off.
	LogShrinkEnabled bool
	// HangThreshold is how long one inbound call may execute before the
	// watchdog declares the component hung. The paper uses 1.0 s.
	HangThreshold time.Duration
	// WatchdogPeriod is the hang-detector scan interval (virtual time).
	WatchdogPeriod time.Duration
	// MemorySize is the guest address space size in bytes.
	MemorySize int64
	// DefaultHeapPages / DefaultDomainPages size component arenas when a
	// descriptor leaves them zero. Both must be powers of two.
	DefaultHeapPages   int
	DefaultDomainPages int
	// CallRetry is how many times a call interrupted by the target's
	// reboot is transparently re-submitted (the fault model replays the
	// same input once; a second failure is treated as deterministic).
	CallRetry int
	// MaxVirtualTime aborts the simulation when the virtual clock passes
	// it — a backstop against livelocked experiments. Zero disables.
	MaxVirtualTime time.Duration
	// Ckpt is the incremental-checkpoint cadence applied to every
	// checkpoint-eligible component (Stateful with Checkpoint set). The
	// zero policy keeps the paper's behaviour: one post-init checkpoint,
	// full-log replay on every recovery.
	Ckpt ckpt.Policy
	// CkptPerComponent overrides Ckpt for the named components.
	CkptPerComponent map[string]ckpt.Policy
	// Aging enables adaptive sensor-driven rejuvenation: when the policy
	// is enabled (SamplePeriod > 0) and the runtime is message-passing,
	// Boot starts a controller thread that samples every rebootable
	// component's aging sensors on the virtual clock and schedules
	// checkpoint-aware rolling rejuvenation through the reboot manager.
	// The zero policy keeps rejuvenation manual (Ctx.Reboot, Rejuvenator).
	Aging aging.Policy
	// AgingTargets restricts the adaptive controller to the named
	// components; empty means every rebootable component in boot order.
	AgingTargets []string
	// Microreboot enables session-granular recovery (rung 1 of the
	// recovery ladder): a failure attributable to one session of an
	// unmerged, session-bearing component evicts and replays only that
	// session while every other session keeps serving; escalation to a
	// whole-component reboot happens automatically when attribution or
	// session replay fails. Off by default so the paper-faithful
	// configurations keep component-granular recovery semantics.
	Microreboot bool
	// ReplayRetCheck compares each replayed call's return values and
	// error against the logged originals during encapsulated restoration
	// and fails the restore with a *ReplayDivergenceError on mismatch.
	// Off by default: divergence checking doubles as a determinism oracle
	// for campaigns but costs an encode per replayed entry.
	ReplayRetCheck bool
	// Defense configures the active-defense pipeline: arena tamper seals,
	// taint-aware rollback past detected corruption, and re-randomized
	// arena layouts on every reboot. The zero policy keeps recovery
	// purely availability-oriented (restore the latest image).
	Defense defense.Policy
}

// CkptPolicyFor returns the checkpoint cadence for the named component:
// its per-component override if present, the config-wide default
// otherwise.
func (c Config) CkptPolicyFor(name string) ckpt.Policy {
	if p, ok := c.CkptPerComponent[name]; ok {
		return p
	}
	return c.Ckpt
}

// Defaults mirrored from the paper's prototype.
const (
	DefaultLogShrinkThreshold = 100
	DefaultHangThreshold      = 1 * time.Second
	DefaultWatchdogPeriod     = 100 * time.Millisecond
	DefaultMemorySize         = 512 << 20
	DefaultHeapPages          = 1024 // 4 MiB arenas
	DefaultDomainPages        = 256  // 1 MiB message domains
)

// fill replaces zero fields with defaults.
func (c Config) fill() Config {
	if c.Policy == 0 {
		c.Policy = PolicyDependencyAware
	}
	if c.LogShrinkThreshold == 0 {
		c.LogShrinkThreshold = DefaultLogShrinkThreshold
	}
	if c.HangThreshold == 0 {
		c.HangThreshold = DefaultHangThreshold
	}
	if c.WatchdogPeriod == 0 {
		c.WatchdogPeriod = DefaultWatchdogPeriod
	}
	if c.MemorySize == 0 {
		c.MemorySize = DefaultMemorySize
	}
	if c.DefaultHeapPages == 0 {
		c.DefaultHeapPages = DefaultHeapPages
	}
	if c.DefaultDomainPages == 0 {
		c.DefaultDomainPages = DefaultDomainPages
	}
	if c.CallRetry == 0 {
		c.CallRetry = 1
	}
	if c.MaxVirtualTime == 0 {
		c.MaxVirtualTime = 24 * time.Hour
	}
	c.Defense = c.Defense.Fill()
	return c
}

// VanillaConfig is the baseline: direct calls, no logging, no isolation,
// modelling unmodified Unikraft.
func VanillaConfig() Config {
	return Config{MessagePassing: false, LogShrinkEnabled: false}.fill()
}

// NoopConfig is VampOS-Noop: message passing under round-robin
// scheduling with polling components.
func NoopConfig() Config {
	return Config{
		MessagePassing:   true,
		Policy:           PolicyRoundRobin,
		LogShrinkEnabled: true,
	}.fill()
}

// DaSConfig is VampOS-DaS: Noop plus dependency-aware scheduling.
func DaSConfig() Config {
	return Config{
		MessagePassing:   true,
		Policy:           PolicyDependencyAware,
		LogShrinkEnabled: true,
	}.fill()
}

// FSmConfig is VampOS-FSm: DaS with the file-system components (VFS and
// 9PFS) merged into one group.
func FSmConfig() Config {
	c := DaSConfig()
	c.Merges = [][]string{{"vfs", "9pfs"}}
	return c
}

// NETmConfig is VampOS-NETm: DaS with the network components (LWIP and
// NETDEV) merged into one group.
func NETmConfig() Config {
	c := DaSConfig()
	c.Merges = [][]string{{"lwip", "netdev"}}
	return c
}
