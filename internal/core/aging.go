package core

import (
	//vampos:allow schedonly -- AgingDriver.stop is flipped by host-side goroutines (campaign verify, tests) while the controller thread polls it; see Rejuvenator.Stop
	"sync/atomic"
	"time"

	"vampos/internal/aging"
	"vampos/internal/trace"
)

// This file is the runtime half of adaptive aging-driven rejuvenation
// (internal/aging holds the policy half). The paper motivates component
// reboot with software aging — leaks and fragmentation that only a
// reboot reclaims (§IV) — and the blind answer is Rejuvenator's fixed
// interval. The AgingDriver instead samples each component's health
// sensors at quiescent points on the virtual clock, scores them through
// the aging.Engine, and rejuvenates only the components whose observed
// aging crossed a threshold, in dependency (boot) order, re-imaging
// each one immediately after its reboot so the next recovery replays a
// near-empty log tail from a clean checkpoint.

// Rejuvenate proactively reboots the named component, checkpoint-aware:
// the reboot restores from the component's last checkpoint image and
// replays the retained tail — shedding every allocation and every byte
// of fragmentation accumulated since that image — and then, if the
// component is checkpoint-eligible, a fresh checkpoint of the
// just-rejuvenated component is taken immediately after, so the next
// recovery (crash or rejuvenation alike) restores from a clean image
// with a near-empty replay tail.
//
// The checkpoint deliberately rides AFTER the reboot, not before:
// checkpoints image the arena verbatim, so imaging an aged component
// would fold its leaks and fragmentation into the recovery image —
// preserving precisely the state rejuvenation exists to shed (the
// paper's argument for reboot-based recovery over checkpoint/restore,
// §IV). The reboot is recorded with reason "rejuvenation" and traced as
// a KindRejuv span whose children are the reboot and the post-reboot
// checkpoint. A failed checkpoint degrades gracefully (recovery stays
// correct, just not cheaper); a failed reboot is the caller's error.
func (c *Ctx) Rejuvenate(name string) error {
	rt := c.rt
	tc, ok := rt.comps[name]
	if !ok {
		return &UnknownComponentError{Name: name}
	}
	var sp, prev trace.SpanID
	if tr := rt.tracer; tr != nil {
		prev = c.span
		sp = tr.Begin(prev, trace.KindRejuv, name, "", "rejuvenate")
		c.span = sp
	}
	err := c.rebootAs(name, "rejuvenation")
	ckptNote := ""
	if err == nil && rt.cfg.MessagePassing &&
		tc.desc.Stateful && tc.desc.Checkpoint && tc.checkpoint != nil {
		if cerr := c.Checkpoint(name); cerr != nil {
			ckptNote = "; post-reboot checkpoint skipped: " + cerr.Error()
		}
	}
	if tr := rt.tracer; tr != nil {
		detail := "ok"
		if err != nil {
			detail = err.Error()
		}
		tr.EndErr(sp, detail+ckptNote)
		c.span = prev
	}
	return err
}

// agingSample reads one component's aging sensors. The caller runs under
// the cooperative scheduler baton, which is exactly the quiescence the
// counters need: no handler frame mutates the arena or the log while the
// sample is assembled.
func (rt *Runtime) agingSample(c *component, now time.Duration) aging.Sample {
	s := aging.Sample{
		At:     now,
		Calls:  c.calls.Load(),
		Errors: c.errs.Load(),
		Busy:   time.Duration(c.busyV.Load()),
	}
	if c.heap != nil {
		hs := c.heap.Stats()
		s.HeapAllocated = hs.AllocatedBytes
		s.HeapLive = hs.LiveAllocs
		s.Fragmentation = hs.ExternalFragmentation()
	}
	if c.domain != nil {
		s.LogLen = c.domain.Log().Len()
	}
	return s
}

// AgingDriver is the adaptive-rejuvenation controller: the sensor-driven
// successor of the fixed-interval Rejuvenator. It samples every target's
// aging sensors each SamplePeriod of virtual time, feeds them to the
// policy engine, and rejuvenates the components the engine declares due,
// in dependency order. Boot starts one automatically when Config.Aging
// is enabled; tests and experiments may also run one by hand via
// NewAgingDriver + Ctx.Go.
type AgingDriver struct {
	rt     *Runtime
	engine *aging.Engine
	// stop is atomic for the same reason as Rejuvenator.stop: Stop is
	// called from host-side goroutines while the controller thread polls.
	stop atomic.Bool

	// Stats
	Rounds  uint64 // completed sample sweeps
	Reboots uint64 // successful rejuvenations
	Errors  uint64 // failed rejuvenations (each arming backoff)
	LastErr error
}

// NewAgingDriver creates an adaptive controller over the given policy.
// An empty target list means every rebootable registered component, in
// boot order — which is dependency order, since substrates register
// first, so a rolling pass reboots providers before their dependents.
func (rt *Runtime) NewAgingDriver(p aging.Policy, targets ...string) *AgingDriver {
	if len(targets) == 0 {
		for _, c := range rt.order {
			if !c.desc.Unrebootable {
				targets = append(targets, c.desc.Name)
			}
		}
	}
	return &AgingDriver{rt: rt, engine: aging.NewEngine(p, targets...)}
}

// Targets returns the monitored components in rejuvenation order.
func (d *AgingDriver) Targets() []string { return d.engine.Components() }

// Policy returns the normalized policy the driver enforces.
func (d *AgingDriver) Policy() aging.Policy { return d.engine.Policy() }

// Run executes the sample/score/rejuvenate loop on the calling thread
// until Stop is called or the simulation ends. Typically launched with
// ctx.Go (Boot does so automatically when Config.Aging is enabled).
func (d *AgingDriver) Run(ctx *Ctx) {
	period := d.engine.Policy().SamplePeriod
	for !d.stop.Load() && !d.rt.stopped {
		ctx.Sleep(period)
		if d.stop.Load() || d.rt.stopped {
			return
		}
		now := ctx.Elapsed()
		for _, name := range d.engine.Components() {
			c, ok := d.rt.comps[name]
			if !ok || c.group == nil || c.group.failedTwice {
				continue
			}
			d.engine.Observe(name, d.rt.agingSample(c, now))
		}
		for _, name := range d.engine.Due(now) {
			if d.stop.Load() || d.rt.stopped {
				return
			}
			err := ctx.Rejuvenate(name)
			d.engine.NoteResult(name, ctx.Elapsed(), err == nil)
			if err != nil {
				d.Errors++
				d.LastErr = err
			} else {
				d.Reboots++
			}
		}
		d.Rounds++
	}
}

// Stop ends the controller after the current sweep. Safe to call from
// any goroutine.
func (d *AgingDriver) Stop() { d.stop.Store(true) }

// Stats returns the named target's monitor accounting.
func (d *AgingDriver) Stats(name string) (aging.Stats, bool) {
	return d.engine.Stats(name)
}

// AllStats returns every target's monitor accounting keyed by component.
func (d *AgingDriver) AllStats() map[string]aging.Stats {
	return d.engine.AllStats()
}

// AgingDriver returns the controller Boot started for Config.Aging, or
// nil when adaptive rejuvenation is not configured.
func (rt *Runtime) AgingDriver() *AgingDriver { return rt.agingDriver }

// AgingStats returns the named component's adaptive-rejuvenation monitor
// accounting; false when no controller runs or the component is not a
// target.
func (rt *Runtime) AgingStats(name string) (aging.Stats, bool) {
	if rt.agingDriver == nil {
		return aging.Stats{}, false
	}
	return rt.agingDriver.Stats(name)
}

// agingHot reports whether the boot-started adaptive controller has the
// named component latched over its aging threshold, or is still inside
// the cooldown that follows a rejuvenation. The checkpoint cadence
// consults this so it never images an arena the controller is about to
// rejuvenate. The cooldown half matters for continuous aging: right
// after a rejuvenation the monitor's window is reset, so the latch needs
// a full window of samples to re-engage — a blind interval during which
// a cadence checkpoint would image the still-leaking arena and ratchet
// those bytes into every later restore. Gating through the cooldown
// closes the gap: if aging persists, Hot re-latches before the cooldown
// expires and the gate holds continuously; if aging stopped, the
// cooldown lapses and the cadence resumes. Reads happen on the worker
// thread while the controller mutates the monitor, but both run under
// the cooperative scheduler baton, which serializes them.
func (rt *Runtime) agingHot(name string) bool {
	st, ok := rt.AgingStats(name)
	if !ok {
		return false
	}
	return st.Hot || rt.clk.Elapsed() < st.CooldownUntil
}
