package core

import (
	"runtime"
	"strconv"
	"testing"
	"time"
)

// TestHangInMergedGroupRebootsWholeGroup injects FaultHang into a member
// of a merged composite: the watchdog must declare the whole group hung,
// reboot both members together, and the retried call must succeed with
// every member's pre-hang state intact.
func TestHangInMergedGroupRebootsWholeGroup(t *testing.T) {
	backend := &kvComp{name: "backend"}
	front := &kvComp{name: "front", backend: "backend"}
	cfg := DaSConfig()
	cfg.Merges = [][]string{{"front", "backend"}}
	cfg.HangThreshold = 500 * time.Millisecond
	cfg.WatchdogPeriod = 50 * time.Millisecond
	cfg.MaxVirtualTime = time.Hour
	rt := NewRuntime(cfg)
	for _, c := range []Component{backend, front} {
		if err := rt.Register(c); err != nil {
			t.Fatal(err)
		}
	}
	err := rt.Run(func(c *Ctx) {
		mustCall(t, c, "front", "put", "a", "1")
		mustCall(t, c, "backend", "put", "b", "2")
		if err := rt.ArmFault("backend", "put", FaultHang); err != nil {
			t.Errorf("ArmFault: %v", err)
			return
		}
		// The armed hang parks the composite's worker; the watchdog
		// reboots the whole group and the retry succeeds.
		mustCall(t, c, "backend", "put", "stuck", "3")
		rets := mustCall(t, c, "backend", "get", "stuck")
		if v, _ := rets.Str(0); v != "3" {
			t.Errorf("stuck = %q after retry, want 3", v)
		}
		// Both members' pre-hang state survived the composite reboot.
		rets = mustCall(t, c, "front", "get", "a")
		if v, _ := rets.Str(0); v != "1!" {
			t.Errorf("front a = %q, want 1!", v)
		}
		rets = mustCall(t, c, "backend", "get", "b")
		if v, _ := rets.Str(0); v != "2" {
			t.Errorf("backend b = %q, want 2", v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if hangs := rt.Stats().Hangs; hangs != 1 {
		t.Fatalf("Hangs = %d, want 1", hangs)
	}
	recs := rt.Reboots()
	if len(recs) != 1 || recs[0].Reason != "hang" {
		t.Fatalf("reboots = %+v, want one hang reboot", recs)
	}
	if len(recs[0].Components) != 2 {
		t.Fatalf("hang reboot covered %v, want both merged members", recs[0].Components)
	}
	for _, name := range []string{"front", "backend"} {
		cs, ok := rt.ComponentStats(name)
		if !ok || cs.Reboots != 1 {
			t.Errorf("%s stats = %+v, want Reboots=1", name, cs)
		}
	}
}

// TestStatsConsistentAcrossCrashRebootCycles drives repeated crash and
// proactive-reboot cycles and checks that RuntimeStats, ComponentStats
// and the RebootRecords tell one consistent story afterwards.
func TestStatsConsistentAcrossCrashRebootCycles(t *testing.T) {
	const cycles = 5
	kv := &kvComp{name: "kv"}
	rt := run(t, DaSConfig(), []Component{kv}, func(c *Ctx) {
		for i := 0; i < cycles; i++ {
			bomb := "bomb" + strconv.Itoa(i)
			kv.panicOn = bomb
			// Crash + failure reboot + transparent retry.
			mustCall(t, c, "kv", "put", bomb, "v"+strconv.Itoa(i))
			// One proactive reboot per cycle on top.
			if err := c.Reboot("kv"); err != nil {
				t.Errorf("cycle %d Reboot: %v", i, err)
				return
			}
		}
		// All writes survived every cycle.
		for i := 0; i < cycles; i++ {
			rets := mustCall(t, c, "kv", "get", "bomb"+strconv.Itoa(i))
			if v, _ := rets.Str(0); v != "v"+strconv.Itoa(i) {
				t.Errorf("bomb%d = %q", i, v)
			}
		}
	})
	stats := rt.Stats()
	if stats.Failures != cycles {
		t.Errorf("Failures = %d, want %d", stats.Failures, cycles)
	}
	if stats.Hangs != 0 || stats.FailedRestores != 0 {
		t.Errorf("unexpected hangs/failed restores: %+v", stats)
	}
	recs := rt.Reboots()
	if len(recs) != 2*cycles {
		t.Fatalf("reboot records = %d, want %d (failure + proactive per cycle)", len(recs), 2*cycles)
	}
	var failureReboots, proactiveReboots uint64
	for i, r := range recs {
		switch {
		case r.Reason == "proactive":
			proactiveReboots++
		case len(r.Reason) >= 7 && r.Reason[:7] == "failure":
			failureReboots++
		default:
			t.Errorf("record %d has unexpected reason %q", i, r.Reason)
		}
		if r.Group != "kv" || len(r.Components) != 1 || r.Components[0] != "kv" {
			t.Errorf("record %d names %s/%v, want kv", i, r.Group, r.Components)
		}
		if r.VirtualDuration <= 0 {
			t.Errorf("record %d has non-positive virtual duration %v", i, r.VirtualDuration)
		}
	}
	if failureReboots != cycles || proactiveReboots != cycles {
		t.Errorf("reboot reasons: %d failure, %d proactive, want %d each", failureReboots, proactiveReboots, cycles)
	}
	cs, ok := rt.ComponentStats("kv")
	if !ok {
		t.Fatal("no component stats for kv")
	}
	if cs.Failures != stats.Failures {
		t.Errorf("ComponentStats.Failures = %d, RuntimeStats.Failures = %d", cs.Failures, stats.Failures)
	}
	if cs.Reboots != uint64(len(recs)) {
		t.Errorf("ComponentStats.Reboots = %d, reboot records = %d", cs.Reboots, len(recs))
	}
	if fr := rt.FullRestarts(); len(fr) != 0 {
		t.Errorf("full restarts = %d, want 0", len(fr))
	}
}

// TestStatsSnapshotsRaceFreeUnderLoad hammers the snapshot accessors
// from a separate goroutine while the simulation crashes and reboots a
// component. Run with -race this proves Stats/Reboots/FullRestarts are
// safe to call from outside the simulation.
func TestStatsSnapshotsRaceFreeUnderLoad(t *testing.T) {
	kv := &kvComp{name: "kv"}
	cfg := DaSConfig()
	cfg.MaxVirtualTime = time.Hour
	rt := NewRuntime(cfg)
	if err := rt.Register(kv); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	snapped := make(chan int)
	go func() {
		n := 0
		for {
			select {
			case <-done:
				snapped <- n
				return
			default:
			}
			_ = rt.Stats()
			_ = rt.Reboots()
			_ = rt.FullRestarts()
			_ = rt.VersionSwitches()
			n++
			runtime.Gosched()
		}
	}()
	err := rt.Run(func(c *Ctx) {
		for i := 0; i < 20; i++ {
			bomb := "bomb" + strconv.Itoa(i)
			kv.panicOn = bomb
			mustCall(t, c, "kv", "put", bomb, "v")
		}
	})
	close(done)
	if err != nil {
		t.Fatal(err)
	}
	if n := <-snapped; n == 0 {
		t.Fatal("snapshot goroutine never ran")
	}
	if got := rt.Stats().Failures; got != 20 {
		t.Fatalf("Failures = %d, want 20", got)
	}
	if got := len(rt.Reboots()); got != 20 {
		t.Fatalf("reboot records = %d, want 20", got)
	}
}
