package core

import (
	"runtime"
	"strconv"
	"testing"
	"time"

	"vampos/internal/aging"
	"vampos/internal/ckpt"
	"vampos/internal/msg"
	"vampos/internal/trace"
)

// leakComp is a stateless toy component that leaks from its arena on
// every call: the canonical aging workload. A reboot cold-reinitialises
// it, scrubbing the arena — rejuvenation reclaims the leak.
type leakComp struct {
	name     string
	leakEach int64
}

func (l *leakComp) Describe() Descriptor {
	return Descriptor{Name: l.name, HeapPages: 64, DomainPages: 16}
}

func (l *leakComp) Init(*Ctx) error { return nil }

func (l *leakComp) Exports() map[string]Handler {
	return map[string]Handler{
		"work": func(ctx *Ctx, _ msg.Args) (msg.Args, error) {
			if l.leakEach > 0 {
				if _, err := ctx.Heap().Alloc(l.leakEach); err != nil {
					return nil, err
				}
			}
			return msg.Args{1}, nil
		},
	}
}

// leakOnlyPolicy fires on leak slope alone, with every other sensor
// disabled, so the tests observe a deterministic cause.
func leakOnlyPolicy() aging.Policy {
	return aging.Policy{
		SamplePeriod: time.Millisecond,
		Window:       4,
		Thresholds: aging.Thresholds{
			LeakSlope:     50_000, // bytes per virtual second
			Fragmentation: -1,
			LogBacklog:    -1,
			LatencyDrift:  -1,
			ErrorRate:     -1,
		},
		Cooldown: 10 * time.Millisecond,
	}
}

func TestAgingDriverRejuvenatesLeakyComponent(t *testing.T) {
	leaky := &leakComp{name: "leaky", leakEach: 256}
	stable := &statelessComp{name: "stable"}
	rt := run(t, DaSConfig(), []Component{leaky, stable}, func(c *Ctx) {
		d := c.Runtime().NewAgingDriver(leakOnlyPolicy())
		c.Go("aging", d.Run)
		// 256 B leaked every ~50µs of virtual time: ~5 MB/s, 100x the
		// 50 kB/s threshold. The stable component serves alongside.
		for i := 0; i < 300; i++ {
			mustCall(t, c, "leaky", "work")
			mustCall(t, c, "stable", "pid")
			c.Sleep(50 * time.Microsecond)
		}
		for d.Reboots == 0 && c.Elapsed() < 30*time.Second {
			c.Sleep(time.Millisecond)
		}
		d.Stop()
		if d.Reboots == 0 {
			t.Fatalf("adaptive driver never rejuvenated (errors=%d last=%v)", d.Errors, d.LastErr)
		}
		st, ok := d.Stats("leaky")
		if !ok || st.Rejuvenations == 0 {
			t.Fatalf("leaky monitor stats = %+v ok=%v", st, ok)
		}
		if st.LastCause != "leak-slope" {
			t.Fatalf("rejuvenation cause = %q, want leak-slope", st.LastCause)
		}
		cs, _ := c.Runtime().ComponentStats("leaky")
		// The reboot scrubbed the arena: far less than the ~77 kB leaked
		// across the run remains allocated.
		if cs.Heap.AllocatedBytes >= 256*300 {
			t.Fatalf("arena still holds %d leaked bytes", cs.Heap.AllocatedBytes)
		}
	})
	var rejuv int
	for _, rec := range rt.Reboots() {
		if rec.Reason != "rejuvenation" {
			t.Fatalf("unexpected reboot reason %q", rec.Reason)
		}
		if rec.Group == "stable" {
			t.Fatal("healthy component was rejuvenated")
		}
		rejuv++
	}
	if rejuv == 0 {
		t.Fatal("no rejuvenation reboot recorded")
	}
	if cs, _ := rt.ComponentStats("stable"); cs.Reboots != 0 {
		t.Fatalf("stable component rebooted %d times", cs.Reboots)
	}
}

func TestConfigAgingAutoStartsDriver(t *testing.T) {
	leaky := &leakComp{name: "leaky", leakEach: 256}
	cfg := DaSConfig()
	cfg.Aging = leakOnlyPolicy()
	cfg.AgingTargets = []string{"leaky"}
	rt := run(t, cfg, []Component{leaky, &statelessComp{name: "stable"}}, func(c *Ctx) {
		d := c.Runtime().AgingDriver()
		if d == nil {
			t.Fatal("Boot did not start the aging driver")
		}
		if got := d.Targets(); len(got) != 1 || got[0] != "leaky" {
			t.Fatalf("targets = %v, want [leaky]", got)
		}
		for i := 0; i < 300; i++ {
			mustCall(t, c, "leaky", "work")
			c.Sleep(50 * time.Microsecond)
		}
		for d.Reboots == 0 && c.Elapsed() < 30*time.Second {
			c.Sleep(time.Millisecond)
		}
	})
	st, ok := rt.AgingStats("leaky")
	if !ok || st.Rejuvenations == 0 {
		t.Fatalf("AgingStats(leaky) = %+v ok=%v, want rejuvenations", st, ok)
	}
	if _, ok := rt.AgingStats("stable"); ok {
		t.Fatal("untargeted component has aging stats")
	}
}

func TestVanillaConfigIgnoresAging(t *testing.T) {
	cfg := VanillaConfig()
	cfg.Aging = aging.DefaultPolicy()
	rt := run(t, cfg, []Component{&kvComp{name: "kv"}}, func(c *Ctx) {
		mustCall(t, c, "kv", "put", "a", "1")
	})
	if rt.AgingDriver() != nil {
		t.Fatal("vanilla runtime started an aging driver")
	}
}

// TestRejuvenateCheckpointAware shows the checkpoint-aware path: the
// rejuvenation reboot restores from the last (pre-aging) image and
// replays the full retained tail — shedding everything accumulated
// since that image — then re-checkpoints the clean component, so the
// NEXT reboot replays a near-empty tail. A pre-reboot checkpoint would
// instead image the aged arena and resurrect it on restore.
func TestRejuvenateCheckpointAware(t *testing.T) {
	kv := &kvComp{name: "kv", checkpointed: true}
	rt := run(t, DaSConfig(), []Component{kv}, func(c *Ctx) {
		for i := 0; i < 40; i++ {
			mustCall(t, c, "kv", "put", "k"+strconv.Itoa(i), "v")
		}
		if n := c.Runtime().LogLen("kv"); n < 40 {
			t.Fatalf("retained log = %d, want >= 40", n)
		}
		if err := c.Rejuvenate("kv"); err != nil {
			t.Fatalf("Rejuvenate: %v", err)
		}
		cps, _ := c.Runtime().CheckpointStats("kv")
		if cps.CheckpointCount == 0 {
			t.Fatal("rejuvenation took no post-reboot checkpoint")
		}
		// The post-reboot checkpoint truncated the replayed prefix: the
		// next recovery starts from the clean image, near-empty tail.
		if n := c.Runtime().LogLen("kv"); n > 2 {
			t.Fatalf("retained log after rejuvenation = %d, want near-empty", n)
		}
		if err := c.Reboot("kv"); err != nil {
			t.Fatalf("Reboot: %v", err)
		}
		// All state survived both reboots.
		for i := 0; i < 40; i++ {
			if v, _ := mustCall(t, c, "kv", "get", "k"+strconv.Itoa(i)).Str(0); v != "v" {
				t.Fatalf("k%d lost after rejuvenation", i)
			}
		}
	})
	recs := rt.Reboots()
	if len(recs) != 2 {
		t.Fatalf("reboot records = %d, want 2", len(recs))
	}
	if recs[0].Reason != "rejuvenation" || recs[1].Reason != "proactive" {
		t.Fatalf("reasons = %q, %q", recs[0].Reason, recs[1].Reason)
	}
	if recs[0].ReplayedEntries == 0 {
		t.Fatal("rejuvenation replayed nothing: the aged tail was not re-executed from the clean image")
	}
	if recs[1].ReplayedEntries != 0 {
		t.Fatalf("post-rejuvenation reboot replayed %d entries, want 0 (clean image + truncated log)", recs[1].ReplayedEntries)
	}
}

// TestCadenceCheckpointGatedWhileAging: the checkpoint cadence must not
// image a component the aging controller has latched over threshold —
// the image would bake the leak into every later restore, and once the
// log is truncated against it the pre-aging state is unrecoverable. The
// gate holds while the monitor is Hot AND through the post-rejuvenation
// cooldown: the monitor's window resets on rejuvenation, so the latch
// needs a full window of samples to re-engage, and continuous aging
// must not slip a checkpoint into that blind interval. The explicit
// Ctx.Checkpoint path stays ungated — it is how Rejuvenate re-images
// the clean component right after the reboot, while the latch is still
// set. The driver is left inert (huge sample period) and the test
// drives the engine by hand, so every transition is deterministic.
func TestCadenceCheckpointGatedWhileAging(t *testing.T) {
	kv := &kvComp{name: "kv", checkpointed: true}
	cfg := DaSConfig()
	cfg.Ckpt = ckpt.Policy{EveryCalls: 2}
	pol := leakOnlyPolicy()
	pol.SamplePeriod = time.Hour
	pol.Cooldown = 50 * time.Millisecond
	cfg.Aging = pol
	cfg.AgingTargets = []string{"kv"}
	run(t, cfg, []Component{kv}, func(c *Ctx) {
		drv := c.Runtime().AgingDriver()
		if drv == nil {
			t.Fatal("Boot did not start the aging driver")
		}
		puts := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				k := strconv.Itoa(i)
				mustCall(t, c, "kv", "put", k, k)
			}
		}
		count := func() uint64 {
			cs, _ := c.Runtime().CheckpointStats("kv")
			return cs.CheckpointCount
		}
		puts(0, 8)
		healthy := count()
		if healthy == 0 {
			t.Fatal("cadence never checkpointed the healthy component")
		}
		// Latch the monitor: a window of samples whose leak slope is far
		// over the 50 kB/s threshold.
		for i := 0; i < 4; i++ {
			drv.engine.Observe("kv", aging.Sample{
				At:            c.Elapsed() + time.Duration(i)*time.Millisecond,
				HeapAllocated: int64(i) * (1 << 20),
			})
		}
		if st, _ := c.Runtime().AgingStats("kv"); !st.Hot {
			t.Fatalf("monitor did not latch: %+v", st)
		}
		puts(8, 16)
		if got := count(); got != healthy {
			t.Fatalf("cadence checkpointed a Hot component: %d -> %d", healthy, got)
		}
		// Rejuvenate's post-reboot capture path is not gated.
		if err := c.Checkpoint("kv"); err != nil {
			t.Fatalf("explicit checkpoint while Hot: %v", err)
		}
		manual := count()
		if manual != healthy+1 {
			t.Fatalf("explicit checkpoint not taken: %d -> %d", healthy, manual)
		}
		// A successful rejuvenation releases the latch and starts the
		// cooldown; the gate must hold until the cooldown lapses.
		drv.engine.NoteResult("kv", c.Elapsed(), true)
		if st, _ := c.Runtime().AgingStats("kv"); st.Hot || st.CooldownUntil <= c.Elapsed() {
			t.Fatalf("NoteResult did not release the latch into cooldown: %+v", st)
		}
		puts(16, 24)
		if got := count(); got != manual {
			t.Fatalf("cadence checkpointed during cooldown: %d -> %d", manual, got)
		}
		c.Sleep(pol.Cooldown)
		puts(24, 32)
		if got := count(); got <= manual {
			t.Fatal("cadence never resumed after the cooldown lapsed")
		}
	})
}

func TestRejuvenateEmitsTraceSpan(t *testing.T) {
	kv := &kvComp{name: "kv", checkpointed: true}
	cfg := DaSConfig()
	cfg.MaxVirtualTime = time.Hour
	rt := NewRuntime(cfg)
	if err := rt.Register(kv); err != nil {
		t.Fatal(err)
	}
	rec := rt.NewTracer("test/rejuv")
	err := rt.Run(func(c *Ctx) {
		mustCall(t, c, "kv", "put", "a", "1")
		if err := c.Rejuvenate("kv"); err != nil {
			t.Fatalf("Rejuvenate: %v", err)
		}
		if err := c.Rejuvenate("nope"); err == nil {
			t.Fatal("rejuvenated unknown component")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var rejuv *trace.Event
	var reboot *trace.Event
	for _, e := range rec.Snapshot() {
		e := e
		switch e.Kind {
		case trace.KindRejuv:
			rejuv = &e
		case trace.KindReboot:
			reboot = &e
		}
	}
	if rejuv == nil {
		t.Fatal("no KindRejuv span recorded")
	}
	if rejuv.Open || rejuv.Detail != "ok" {
		t.Fatalf("rejuv span = %+v, want closed ok", rejuv)
	}
	if reboot == nil || reboot.Parent != rejuv.ID {
		t.Fatalf("reboot span not parented under rejuvenation: %+v", reboot)
	}
	if reboot.Name != "rejuvenation" {
		t.Fatalf("reboot span reason = %q", reboot.Name)
	}
}

// TestRejuvenatorStopSafeFromHost is the regression test for the
// unsynchronized Rejuvenator.stop flag: Stop is called from a host-side
// goroutine while the schedule thread polls the flag. Run with -race
// this proves the flag is safe to flip from outside the baton.
func TestRejuvenatorStopSafeFromHost(t *testing.T) {
	kv := &kvComp{name: "kv"}
	cfg := DaSConfig()
	cfg.MaxVirtualTime = time.Hour
	rt := NewRuntime(cfg)
	if err := rt.Register(kv); err != nil {
		t.Fatal(err)
	}
	var rej *Rejuvenator
	started := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		<-started
		for len(rt.Reboots()) == 0 {
			runtime.Gosched()
		}
		rej.Stop()
		close(stopped)
	}()
	err := rt.Run(func(c *Ctx) {
		rej = c.Runtime().NewRejuvenator(300*time.Microsecond, "kv")
		close(started)
		c.Go("rej", rej.Run)
		for {
			select {
			case <-stopped:
				return
			default:
				mustCall(t, c, "kv", "put", "k", "v")
				c.Sleep(100 * time.Microsecond)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Reboots()) == 0 {
		t.Fatal("rejuvenator never ran")
	}
}

// TestAgingDriverStopSafeFromHost gives the adaptive driver the same
// outside-the-baton Stop guarantee.
func TestAgingDriverStopSafeFromHost(t *testing.T) {
	leaky := &leakComp{name: "leaky", leakEach: 256}
	cfg := DaSConfig()
	cfg.MaxVirtualTime = time.Hour
	rt := NewRuntime(cfg)
	if err := rt.Register(leaky); err != nil {
		t.Fatal(err)
	}
	var drv *AgingDriver
	started := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		<-started
		for len(rt.Reboots()) == 0 {
			runtime.Gosched()
		}
		drv.Stop()
		close(stopped)
	}()
	err := rt.Run(func(c *Ctx) {
		drv = c.Runtime().NewAgingDriver(leakOnlyPolicy())
		close(started)
		c.Go("aging", drv.Run)
		for {
			select {
			case <-stopped:
				return
			default:
				mustCall(t, c, "leaky", "work")
				c.Sleep(50 * time.Microsecond)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if drv.Reboots == 0 {
		t.Fatal("driver never rejuvenated")
	}
}
