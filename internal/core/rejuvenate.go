package core

import (
	//vampos:allow schedonly -- Rejuvenator.stop is flipped by host-side goroutines (tests, experiment monitors) while the schedule thread polls it; a plain bool would be a data race
	"sync/atomic"
	"time"
)

// Rejuvenator performs periodic proactive component reboots — the
// administrator's software-rejuvenation schedule of §IV/§VII-D, where
// component-level reboots are cheap enough to run "more frequently than
// in the case of a regular reboot". For the sensor-driven alternative
// see AgingDriver.
type Rejuvenator struct {
	rt       *Runtime
	interval time.Duration
	targets  []string
	stop     atomic.Bool

	// Stats
	Rounds  uint64
	Reboots uint64
	Errors  uint64
	LastErr error
}

// NewRejuvenator creates a driver that reboots the listed components one
// by one, waiting interval between reboots. An empty target list means
// every rebootable registered component, in boot order.
func (rt *Runtime) NewRejuvenator(interval time.Duration, targets ...string) *Rejuvenator {
	if len(targets) == 0 {
		for _, c := range rt.order {
			if !c.desc.Unrebootable {
				targets = append(targets, c.desc.Name)
			}
		}
	}
	return &Rejuvenator{rt: rt, interval: interval, targets: targets}
}

// Targets returns the rejuvenation schedule.
func (r *Rejuvenator) Targets() []string {
	out := make([]string, len(r.targets))
	copy(out, r.targets)
	return out
}

// Run executes the schedule on the calling thread until Stop is called
// (or the simulation ends). Typically launched with ctx.Go.
func (r *Rejuvenator) Run(ctx *Ctx) {
	for i := 0; !r.stop.Load() && !r.rt.stopped; i++ {
		ctx.Sleep(r.interval)
		if r.stop.Load() || r.rt.stopped {
			return
		}
		target := r.targets[i%len(r.targets)]
		if err := ctx.Reboot(target); err != nil {
			r.Errors++
			r.LastErr = err
		} else {
			r.Reboots++
		}
		if (i+1)%len(r.targets) == 0 {
			r.Rounds++
		}
	}
}

// Stop ends the schedule after the current wait or reboot. Safe to call
// from any goroutine, including host-side code outside the scheduler
// baton.
func (r *Rejuvenator) Stop() { r.stop.Store(true) }
