package core

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"vampos/internal/ckpt"
	"vampos/internal/defense"
	"vampos/internal/mem"
	"vampos/internal/msg"
)

func defenseConfig() Config {
	cfg := DaSConfig()
	cfg.Defense = defense.Policy{Enabled: true, Rerandomize: true}
	return cfg
}

// TestTamperDetectionAndTaintRollback: a host-side write into a durable
// arena breaks the next seal verification; recovery quarantines every
// image the watermark poisons, restores one that strictly predates it,
// and replays only the un-tainted tail — calls that ran against the
// tampered arena are discarded, not replayed.
func TestTamperDetectionAndTaintRollback(t *testing.T) {
	kv := &kvComp{name: "kv", checkpointed: true}
	cfg := defenseConfig()
	cfg.Defense.SealEveryCalls = 4
	cfg.Ckpt = ckpt.Policy{EveryCalls: 2}
	rt := run(t, cfg, []Component{kv}, func(c *Ctx) {
		// put1 captures the initial seal; put2 lands a cadence checkpoint.
		mustCall(t, c, "kv", "put", "k1", "1")
		mustCall(t, c, "kv", "put", "k2", "2")
		// Host-side tamper between calls: flip bytes deep in kv's arena.
		tc := c.rt.comps["kv"]
		if err := c.rt.memry.HostWrite(tc.heapBase+mem.PageSize, []byte{0xde, 0xad}); err != nil {
			t.Fatal(err)
		}
		// put4 checkpoints the now-tampered arena; put5's verification
		// (sealCalls reaches 4) breaks the seal and reboots kv.
		mustCall(t, c, "kv", "put", "k3", "3")
		mustCall(t, c, "kv", "put", "k4", "4")
		mustCall(t, c, "kv", "put", "k5", "5")
		// Queued during the tamper reboot; answered from the rolled-back
		// store. Only put1 predates the watermark, so only k1 survives —
		// the post-seal calls ran against (or after) a tampered arena and
		// taint-aware recovery refuses to replay them.
		rets := mustCall(t, c, "kv", "get", "k1")
		if v, _ := rets.Str(0); v != "1" {
			t.Errorf("k1 = %q after taint rollback, want 1", v)
		}
		// Image-history discipline, read before further cadence checkpoints
		// evict the quarantined entries from the depth-bounded ring.
		var quarantined, clean int
		for _, m := range c.rt.ImageMetas("kv") {
			if m.Quarantined {
				quarantined++
			} else {
				clean++
			}
		}
		if quarantined != 2 || clean == 0 {
			t.Errorf("image metas %+v: want 2 quarantined and >=1 clean", c.rt.ImageMetas("kv"))
		}
		for _, k := range []string{"k2", "k3", "k4", "k5"} {
			if _, err := c.Call("kv", "get", k); !errors.Is(err, ENOENT) {
				t.Errorf("tainted key %s survived rollback (err=%v)", k, err)
			}
		}
		// The component serves normally in its new incarnation.
		mustCall(t, c, "kv", "put", "k6", "6")
	})
	st := rt.Stats()
	if st.TamperDetections != 1 {
		t.Fatalf("TamperDetections = %d, want 1", st.TamperDetections)
	}
	if st.TaintRollbacks != 1 {
		t.Fatalf("TaintRollbacks = %d, want 1", st.TaintRollbacks)
	}
	if st.QuarantinedImages != 2 {
		t.Fatalf("QuarantinedImages = %d, want 2 (the put2 and put4 images)", st.QuarantinedImages)
	}
	recs := rt.Reboots()
	if len(recs) != 1 {
		t.Fatalf("reboots = %d, want 1", len(recs))
	}
	rec := recs[0]
	if !strings.Contains(rec.Reason, "tamper") {
		t.Fatalf("reboot reason = %q, want tamper", rec.Reason)
	}
	if rec.TaintWatermark == 0 || rec.RestoredEpochSeq >= rec.TaintWatermark {
		t.Fatalf("restored epoch seq %d does not strictly predate watermark %d",
			rec.RestoredEpochSeq, rec.TaintWatermark)
	}
	if rec.QuarantinedImages != 2 {
		t.Fatalf("record quarantined = %d, want 2", rec.QuarantinedImages)
	}
	if rec.ReplayedEntries != 1 {
		t.Fatalf("replayed %d entries, want 1 (only the pre-watermark put, from the archive)", rec.ReplayedEntries)
	}
	if fp := rt.LayoutFingerprint("kv"); fp == 0 {
		t.Fatal("layout fingerprint not stamped after defense reboot")
	}
	if len(rec.LayoutFingerprints) != 1 || rec.LayoutFingerprints[0] != rt.LayoutFingerprint("kv") {
		t.Fatalf("record fingerprints %v disagree with live fingerprint %d",
			rec.LayoutFingerprints, rt.LayoutFingerprint("kv"))
	}
}

// TestDivergenceTaintRetry: with defense enabled, a ReplayRetCheck
// divergence is treated as corruption evidence — the diverging seq
// becomes the taint watermark and the restore retries below it instead
// of fail-stopping the group.
func TestDivergenceTaintRetry(t *testing.T) {
	d := &nondetComp{name: "nd"}
	cfg := defenseConfig()
	cfg.ReplayRetCheck = true
	cfg.MaxVirtualTime = time.Hour
	rt := NewRuntime(cfg)
	if err := rt.Register(d); err != nil {
		t.Fatal(err)
	}
	err := rt.Run(func(c *Ctx) {
		mustCall(t, c, "nd", "bump") // logged ret: 1
		mustCall(t, c, "nd", "bump") // logged ret: 2
		d.crash = true
		// The crash reboots nd; replay re-runs bump #1 against the live
		// n=2 and diverges. Defense stamps the diverging seq as the taint
		// watermark and the retry restores the post-init image with the
		// suspect tail dropped — the group keeps serving.
		if _, err := c.Call("nd", "bump"); err != nil {
			t.Fatalf("bump after divergence retry: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := rt.Stats()
	if st.FailedRestores != 0 {
		t.Fatalf("FailedRestores = %d: divergence fail-stopped despite defense", st.FailedRestores)
	}
	if st.TaintRollbacks != 1 {
		t.Fatalf("TaintRollbacks = %d, want 1", st.TaintRollbacks)
	}
	if st.TamperDetections != 1 {
		t.Fatalf("TamperDetections = %d, want 1 (divergence counts as a detection)", st.TamperDetections)
	}
	recs := rt.Reboots()
	if len(recs) != 1 {
		t.Fatalf("reboots = %d, want 1", len(recs))
	}
	if rec := recs[0]; rec.TaintWatermark == 0 || rec.RestoredEpochSeq >= rec.TaintWatermark {
		t.Fatalf("restored epoch seq %d does not strictly predate watermark %d",
			rec.RestoredEpochSeq, rec.TaintWatermark)
	}
}

// TestRerandomizedRebootsChangeFingerprint: consecutive reboots of the
// same component land on different arena layouts — the fingerprint
// differs every incarnation while the recovered state stays correct.
func TestRerandomizedRebootsChangeFingerprint(t *testing.T) {
	kv := &kvComp{name: "kv", checkpointed: true}
	cfg := defenseConfig()
	cfg.Defense.Seed = 42
	var fps []uint64
	rt := run(t, cfg, []Component{kv}, func(c *Ctx) {
		mustCall(t, c, "kv", "put", "a", "1")
		for i := 0; i < 3; i++ {
			if err := c.Reboot("kv"); err != nil {
				t.Fatal(err)
			}
			fps = append(fps, c.rt.LayoutFingerprint("kv"))
			rets := mustCall(t, c, "kv", "get", "a")
			if v, _ := rets.Str(0); v != "1" {
				t.Fatalf("a = %q after reboot %d", v, i)
			}
		}
	})
	for i, fp := range fps {
		if fp == 0 {
			t.Fatalf("fingerprint %d is zero", i)
		}
		for j := 0; j < i; j++ {
			if fps[j] == fp {
				t.Fatalf("reboots %d and %d share layout fingerprint %d", j, i, fp)
			}
		}
	}
	recs := rt.Reboots()
	if len(recs) != 3 {
		t.Fatalf("reboots = %d, want 3", len(recs))
	}
	for i, rec := range recs {
		if len(rec.LayoutFingerprints) != 1 || rec.LayoutFingerprints[0] != fps[i] {
			t.Fatalf("record %d fingerprints %v, want [%d]", i, rec.LayoutFingerprints, fps[i])
		}
	}
}

// breachComp's poke handler attempts a cross-domain store. Interposition
// confines it to an EFAULT; with RebootOnFault the runtime additionally
// treats the attempt as evidence of compromise and reboots the offender
// into a re-randomized incarnation.
type breachComp struct {
	name      string
	initCount int
}

func (b *breachComp) Describe() Descriptor {
	return Descriptor{Name: b.name, HeapPages: 4, DomainPages: 4}
}

func (b *breachComp) Init(*Ctx) error {
	b.initCount++
	return nil
}

func (b *breachComp) Exports() map[string]Handler {
	return map[string]Handler{
		"poke": func(ctx *Ctx, args msg.Args) (msg.Args, error) {
			addr, err := args.Uint64(0)
			if err != nil {
				return nil, err
			}
			if werr := ctx.Mem().Write(mem.Addr(addr), []byte{0xff}); werr != nil {
				return nil, Errno("EFAULT: " + werr.Error())
			}
			return nil, nil
		},
		"ping": func(*Ctx, msg.Args) (msg.Args, error) {
			return msg.Args{"pong"}, nil
		},
	}
}

// TestPKRUMisuseRebootsOffender: a handler that raises protection faults
// gets its reply delivered (the caller observes the EFAULT, and the
// victim's memory stays intact), then the offending component is
// rebooted with reason pkru-misuse and a fresh layout.
func TestPKRUMisuseRebootsOffender(t *testing.T) {
	kv := &kvComp{name: "kv", checkpointed: true}
	mal := &breachComp{name: "mal"}
	cfg := defenseConfig()
	cfg.Defense.RebootOnFault = true
	rt := run(t, cfg, []Component{kv, mal}, func(c *Ctx) {
		mustCall(t, c, "kv", "put", "a", "1")
		victim := c.rt.comps["kv"].heapBase
		_, err := c.Call("mal", "poke", uint64(victim))
		if err == nil || !strings.Contains(err.Error(), "EFAULT") {
			t.Fatalf("cross-domain poke returned %v, want EFAULT", err)
		}
		// The victim's state is untouched and the offender serves again
		// after its punitive reboot.
		rets := mustCall(t, c, "kv", "get", "a")
		if v, _ := rets.Str(0); v != "1" {
			t.Errorf("victim state a = %q after breach, want 1", v)
		}
		if _, err := c.Call("mal", "poke", uint64(victim)); err == nil {
			t.Error("second poke succeeded")
		}
		// Wait out the second punitive reboot: a ping queues during the
		// restore and completes only once the group serves again.
		mustCall(t, c, "mal", "ping")
	})
	st := rt.Stats()
	if st.PKRUBreaches != 2 {
		t.Fatalf("PKRUBreaches = %d, want 2", st.PKRUBreaches)
	}
	if st.TaintRollbacks != 0 {
		t.Fatalf("TaintRollbacks = %d, want 0 (breach reboots don't taint the offender)", st.TaintRollbacks)
	}
	recs := rt.Reboots()
	if len(recs) != 2 {
		t.Fatalf("reboots = %d, want 2", len(recs))
	}
	for _, rec := range recs {
		if rec.Reason != "pkru-misuse" {
			t.Fatalf("reboot reason = %q, want pkru-misuse", rec.Reason)
		}
	}
	if mal.initCount != 3 {
		t.Fatalf("offender initCount = %d, want 3 (boot + two punitive reboots)", mal.initCount)
	}
	if kvReboots, _ := rt.ComponentStats("kv"); kvReboots.Reboots != 0 {
		t.Fatalf("victim rebooted %d times", kvReboots.Reboots)
	}
}

// TestDefenseDisabledIsInert: with the policy off, no seals, histories,
// fingerprints or defense counters appear — the subsystem costs nothing
// unless asked for.
func TestDefenseDisabledIsInert(t *testing.T) {
	kv := &kvComp{name: "kv", checkpointed: true}
	cfg := DaSConfig()
	cfg.Ckpt = ckpt.Policy{EveryCalls: 2}
	rt := run(t, cfg, []Component{kv}, func(c *Ctx) {
		for i := 0; i < 6; i++ {
			mustCall(t, c, "kv", "put", "k"+strconv.Itoa(i), strconv.Itoa(i))
		}
		if err := c.Reboot("kv"); err != nil {
			t.Fatal(err)
		}
	})
	st := rt.Stats()
	if st.TamperDetections+st.PKRUBreaches+st.TaintRollbacks+st.QuarantinedImages != 0 {
		t.Fatalf("defense counters moved while disabled: %+v", st)
	}
	if metas := rt.ImageMetas("kv"); metas != nil {
		t.Fatalf("image history %v retained while disabled", metas)
	}
	if fp := rt.LayoutFingerprint("kv"); fp != 0 {
		t.Fatalf("fingerprint %d stamped while disabled", fp)
	}
	if rec := rt.Reboots()[0]; rec.LayoutFingerprints != nil || rec.TaintWatermark != 0 {
		t.Fatalf("defense fields populated while disabled: %+v", rec)
	}
}
