package core

import (
	"fmt"
	"time"

	"vampos/internal/mem"
	"vampos/internal/sched"
)

// FullRestartStats describes one whole-image restart.
type FullRestartStats struct {
	VirtualDuration time.Duration
	WallDuration    time.Duration
	At              time.Time
}

// FullRestart is the baseline the paper compares against: the regular
// reboot that restarts the whole unikernel image. Every component is
// torn down and re-initialised from scratch, all logs and runtime state
// are discarded, and every in-flight call fails. Unlike VampOS's
// component-level reboot nothing is restored — the application layer is
// expected to rebuild its own state (e.g. Redis reloading its AOF)
// after the instance comes back.
//
// It must be called from an application/controller thread that is not
// itself waiting on any component call. The caller is responsible for
// having stopped the application threads first.
func (rt *Runtime) FullRestart(c *Ctx) error {
	if !rt.booted {
		return fmt.Errorf("core: FullRestart before Boot")
	}
	startV := rt.clk.Elapsed()
	//vampos:allow detclock -- full-restart latency is reported in wall time alongside virtual time (recovery comparison); the reading never feeds back into the simulation
	startW := time.Now()

	if rt.cfg.MessagePassing {
		// Fail everything in flight in seq order (deterministic caller
		// wake order); queued mailbox work dies with it.
		for _, pc := range rt.pendingInOrder() {
			if !pc.done {
				rt.finishCall(pc, nil, errnoString(ErrStopped))
			}
		}
		rt.mq = nil
		for _, g := range rt.groups {
			if g.worker != nil && g.worker.t.State() != sched.StateDone {
				g.worker.t.Kill()
			}
			g.rebooting = false
			g.failedTwice = false
			g.currentSeq = 0
			g.curRec, g.curLog = nil, nil
		}
	}
	// Scrub every component: memory, allocators, logs, runtime state.
	for _, comp := range rt.order {
		if err := rt.memry.Zero(comp.heapBase, comp.heapPages*mem.PageSize); err != nil {
			return err
		}
		heap, err := mem.NewBuddy(comp.heapBase, int64(comp.heapPages)*mem.PageSize)
		if err != nil {
			return err
		}
		comp.heap = heap
		comp.domain.DropQueued()
		comp.domain.Log().Reset()
		comp.runtimeState = nil
		comp.checkpoint = nil
		if cr, ok := comp.comp.(ColdResetter); ok {
			cr.Reset()
		}
	}
	// Reset the application heap as well: the whole image restarts.
	if rt.appHeap != nil {
		if err := rt.memry.Zero(rt.appHeapBase, rt.appHeapPages*mem.PageSize); err != nil {
			return err
		}
		heap, err := mem.NewBuddy(rt.appHeapBase, int64(rt.appHeapPages)*mem.PageSize)
		if err != nil {
			return err
		}
		rt.appHeap = heap
	}
	// Re-initialise in boot order, re-taking checkpoints.
	if rt.cfg.MessagePassing {
		for _, g := range rt.groups {
			rt.spawnWorker(g, false)
		}
		rt.bootThread = c.th
		for _, g := range rt.groups {
			for _, comp := range g.members {
				if err := rt.initComponentMP(c.th, g, comp); err != nil {
					return fmt.Errorf("core: full restart init %q: %w", comp.desc.Name, err)
				}
			}
		}
	} else {
		for _, comp := range rt.order {
			ctx := &Ctx{rt: rt, comp: comp, th: c.th}
			if err := comp.comp.Init(ctx); err != nil {
				return fmt.Errorf("core: full restart init %q: %w", comp.desc.Name, err)
			}
		}
	}
	rt.recMu.Lock()
	rt.fullRestarts = append(rt.fullRestarts, FullRestartStats{
		VirtualDuration: rt.clk.Elapsed() - startV,
		//vampos:allow detclock -- closes the wall-time measurement opened at FullRestart entry; presentation-only
		WallDuration: time.Since(startW),
		At:           rt.clk.Now(),
	})
	rt.recMu.Unlock()
	return nil
}

// FullRestarts returns the record of whole-image restarts. Safe to call
// from any goroutine.
func (rt *Runtime) FullRestarts() []FullRestartStats {
	rt.recMu.Lock()
	defer rt.recMu.Unlock()
	out := make([]FullRestartStats, len(rt.fullRestarts))
	copy(out, rt.fullRestarts)
	return out
}
