package core

import (
	"sort"
	//vampos:allow schedonly -- RuntimeStats counters are read by campaign worker goroutines mid-run; atomics keep the snapshots tear-free
	"sync/atomic"
	"time"

	"vampos/internal/ckpt"
	"vampos/internal/mem"
	"vampos/internal/msg"
	"vampos/internal/sched"
)

// RuntimeStats counts runtime activity across the whole instance.
type RuntimeStats struct {
	Calls           uint64 // message-passing calls issued
	Messages        uint64 // messages pushed by the message thread
	DirectCalls     uint64 // vanilla / intra-merge function calls
	Injects         uint64 // fire-and-forget injections (virtual IRQs)
	Failures        uint64 // component crashes detected
	Hangs           uint64 // component hangs detected
	Microreboots    uint64 // session microreboots completed (rung 1)
	MicroEscalates  uint64 // microreboots escalated to component reboots
	FailedRestores  uint64 // restorations that themselves failed
	CompactErrors   uint64 // log compactions that returned an error
	VersionSwitches uint64 // fallback implementations swapped in (§VIII)
	Checkpoints     uint64 // incremental checkpoints taken
	CheckpointErrs  uint64 // incremental checkpoints that failed (old image kept)
	// Defense counters (zero unless Config.Defense.Enabled).
	TamperDetections  uint64 // arena-seal breaks detected (host tampering)
	PKRUBreaches      uint64 // PKRU-misuse attempts answered with a reboot
	TaintRollbacks    uint64 // taint-aware rollbacks to a pre-watermark image
	QuarantinedImages uint64 // checkpoint images quarantined as tainted
}

// runtimeCounters backs RuntimeStats with atomics: the counters are
// incremented from simulated threads while Stats() may be called from
// any goroutine (a monitor, a test asserting under -race), so plain
// fields would make every snapshot a data race.
type runtimeCounters struct {
	calls            atomic.Uint64
	messages         atomic.Uint64
	directCalls      atomic.Uint64
	injects          atomic.Uint64
	failures         atomic.Uint64
	hangs            atomic.Uint64
	microreboots     atomic.Uint64
	microEscalations atomic.Uint64
	failedRestores   atomic.Uint64
	compactErrors    atomic.Uint64
	versionSwitches  atomic.Uint64
	checkpoints      atomic.Uint64
	checkpointErrors atomic.Uint64
	tampers          atomic.Uint64
	breaches         atomic.Uint64
	rollbacks        atomic.Uint64
	quarantined      atomic.Uint64
}

// RebootRecord describes one completed component(-group) reboot; the
// Fig. 6 experiment aggregates these.
type RebootRecord struct {
	Group           string
	Components      []string
	Reason          string
	VirtualDuration time.Duration
	WallDuration    time.Duration
	ReplayedEntries int
	RestoredPages   int
	At              time.Time
	// TaintWatermark is the first suspect global seq honoured by this
	// restore (zero when no member was tainted). RestoredEpochSeq is the
	// epoch seq of the image the tainted member actually landed on — the
	// defense oracle asserts RestoredEpochSeq < TaintWatermark.
	TaintWatermark   uint64
	RestoredEpochSeq uint64
	// QuarantinedImages counts checkpoint images newly quarantined by this
	// restore's watermark.
	QuarantinedImages int
	// LayoutFingerprints holds each member's post-restore arena layout
	// fingerprint, parallel to Components (nil unless Defense.Enabled).
	LayoutFingerprints []uint64
}

// ComponentStats is the per-component health view.
type ComponentStats struct {
	Name     string
	Group    string
	Key      mem.Key
	Stateful bool
	Failures uint64
	Reboots  uint64
	// Microreboots counts session-granular recoveries that completed at
	// rung 1 without rebooting the component.
	Microreboots uint64
	LogLen       int
	LogStats     msg.LogStats
	DomainBytes  int64
	Heap         mem.BuddyStats
	Pending      int
	// Ckpt is the component's incremental-checkpoint accounting (zero
	// for components that are not checkpoint-eligible).
	Ckpt ckpt.Stats
	// Calls/Errors/Busy are the aging sensors' raw inputs: completed
	// inbound calls, calls that returned an error, and cumulative virtual
	// handler time (replay excluded).
	Calls  uint64
	Errors uint64
	Busy   time.Duration
}

// Stats returns a snapshot of the runtime counters. Safe to call from
// any goroutine.
func (rt *Runtime) Stats() RuntimeStats {
	return RuntimeStats{
		Calls:             rt.stats.calls.Load(),
		Messages:          rt.stats.messages.Load(),
		DirectCalls:       rt.stats.directCalls.Load(),
		Injects:           rt.stats.injects.Load(),
		Failures:          rt.stats.failures.Load(),
		Hangs:             rt.stats.hangs.Load(),
		Microreboots:      rt.stats.microreboots.Load(),
		MicroEscalates:    rt.stats.microEscalations.Load(),
		FailedRestores:    rt.stats.failedRestores.Load(),
		CompactErrors:     rt.stats.compactErrors.Load(),
		VersionSwitches:   rt.stats.versionSwitches.Load(),
		Checkpoints:       rt.stats.checkpoints.Load(),
		CheckpointErrs:    rt.stats.checkpointErrors.Load(),
		TamperDetections:  rt.stats.tampers.Load(),
		PKRUBreaches:      rt.stats.breaches.Load(),
		TaintRollbacks:    rt.stats.rollbacks.Load(),
		QuarantinedImages: rt.stats.quarantined.Load(),
	}
}

// SchedStats returns the scheduler counters (dispatches etc.).
func (rt *Runtime) SchedStats() sched.Stats { return rt.sch.Stats() }

// Reboots returns the completed reboot records in order. Safe to call
// from any goroutine.
func (rt *Runtime) Reboots() []RebootRecord {
	rt.recMu.Lock()
	defer rt.recMu.Unlock()
	out := make([]RebootRecord, len(rt.reboots))
	copy(out, rt.reboots)
	return out
}

// ComponentStats returns the health view of one component.
func (rt *Runtime) ComponentStats(name string) (ComponentStats, bool) {
	c, ok := rt.comps[name]
	if !ok {
		return ComponentStats{}, false
	}
	cs := ComponentStats{
		Name:         c.desc.Name,
		Stateful:     c.desc.Stateful,
		Failures:     c.failures.Load(),
		Reboots:      c.reboots.Load(),
		Microreboots: c.micro.Load(),
		Calls:        c.calls.Load(),
		Errors:       c.errs.Load(),
		Busy:         time.Duration(c.busyV.Load()),
	}
	if c.group != nil {
		cs.Group = c.group.name
		cs.Key = c.group.key
		cs.Pending = c.group.mailbox.Pending()
	}
	if c.domain != nil {
		cs.LogLen = c.domain.Log().Len()
		cs.LogStats = c.domain.Log().Stats()
		cs.DomainBytes = c.domain.BytesInUse()
	}
	if c.heap != nil {
		cs.Heap = c.heap.Stats()
	}
	if c.tracker != nil {
		cs.Ckpt = c.tracker.Stats()
	}
	return cs, true
}

// ResetLog discards a component's retained restoration log. It exists
// for benchmarks that deliberately disable session-aware shrinking: the
// paper warns that such logs grow without bound (§V-F), and an unbounded
// benchmark loop would otherwise exhaust the message domain. After a
// reset, a reboot restores only the checkpoint image.
func (rt *Runtime) ResetLog(name string) {
	if c, ok := rt.comps[name]; ok && c.domain != nil {
		c.domain.Log().Reset()
	}
}

// LogLen returns the retained log length of a component, or -1 when the
// component is unknown or unlogged.
func (rt *Runtime) LogLen(name string) int {
	c, ok := rt.comps[name]
	if !ok || c.domain == nil {
		return -1
	}
	return c.domain.Log().Len()
}

// LogRecords returns decoded views of a component's retained
// restoration-log records (nil for unknown or unlogged components).
// Read-only observation hook: property tests audit the session
// invariants — opener liveness, class discipline — on it.
func (rt *Runtime) LogRecords(name string) ([]msg.RecordView, error) {
	c, ok := rt.comps[name]
	if !ok || c.domain == nil {
		return nil, nil
	}
	return c.domain.Log().Entries()
}

// SessionLive reports whether a component's log retains a live
// (successful, not closed) opener for the session — the precondition
// session microreboot attribution checks before attempting rung 1.
func (rt *Runtime) SessionLive(name string, session msg.SessionID) bool {
	c, ok := rt.comps[name]
	if !ok || c.domain == nil {
		return false
	}
	return c.domain.Log().HasLiveOpener(session)
}

// DomainBytes sums the bytes in use across every message domain: the
// instance's logging/message space overhead (Fig. 7b).
func (rt *Runtime) DomainBytes() int64 {
	var n int64
	for _, c := range rt.order {
		if c.domain != nil {
			n += c.domain.BytesInUse()
		}
	}
	return n
}

// ResidentBytes reports materialised guest memory (Fig. 7b).
func (rt *Runtime) ResidentBytes() int64 { return rt.memry.ResidentBytes() }

// InjectionPoint is one armable fault site: a component × exported
// function cell of the fault-injection space. Campaign engines enumerate
// these from the registry instead of hard-coding trial lists.
type InjectionPoint struct {
	// Component is the registered component name.
	Component string
	// Fn is the exported function name.
	Fn string
	// Logged marks functions covered by a log policy: their calls are
	// replayed during encapsulated restoration.
	Logged bool
	// Stateful mirrors the component descriptor.
	Stateful bool
	// Unrebootable marks documented-unrebootable components (VIRTIO):
	// campaigns must classify their failures as expected, not as
	// regressions.
	Unrebootable bool
	// Sessionful marks functions whose faults are attributable to one
	// session (the component implements SessionResolver + SessionEvictor
	// and lists the function in SessionFns): under the Microreboot
	// configuration these are the per-session fault sites where rung-1
	// recovery applies.
	Sessionful bool
	// Checkpointed marks checkpoint-eligible components (Stateful with
	// Checkpoint set): the components whose durable arenas the attack
	// campaign's tamper faults target, since only they retain images a
	// taint-aware rollback can land on.
	Checkpointed bool
}

// InjectionPoints enumerates every armable fault site in registration
// order, functions sorted within each component. The enumeration is the
// ground truth for fault-injection campaigns: every registered component
// and every exported function appears exactly once.
func (rt *Runtime) InjectionPoints() []InjectionPoint {
	var out []InjectionPoint
	for _, c := range rt.order {
		fns := make([]string, 0, len(c.exports))
		for fn := range c.exports {
			fns = append(fns, fn)
		}
		sort.Strings(fns)
		sessionful := make(map[string]bool)
		if res, ok := c.comp.(SessionResolver); ok {
			if _, ok := c.comp.(SessionEvictor); ok {
				for _, fn := range res.SessionFns() {
					sessionful[fn] = true
				}
			}
		}
		for _, fn := range fns {
			_, logged := c.policies[fn]
			out = append(out, InjectionPoint{
				Component:    c.desc.Name,
				Fn:           fn,
				Logged:       logged,
				Stateful:     c.desc.Stateful,
				Unrebootable: c.desc.Unrebootable,
				Sessionful:   sessionful[fn],
				Checkpointed: c.desc.Stateful && c.desc.Checkpoint,
			})
		}
	}
	return out
}

// Exports returns a component's exported function names in sorted order
// (nil for an unknown component).
func (rt *Runtime) Exports(name string) []string {
	c, ok := rt.comps[name]
	if !ok {
		return nil
	}
	fns := make([]string, 0, len(c.exports))
	for fn := range c.exports {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	return fns
}

// Describe returns the registered descriptor of a component.
func (rt *Runtime) Describe(name string) (Descriptor, bool) {
	c, ok := rt.comps[name]
	if !ok {
		return Descriptor{}, false
	}
	return c.desc, true
}

// GroupOf returns the scheduling/protection group name of a component.
func (rt *Runtime) GroupOf(name string) (string, bool) {
	c, ok := rt.comps[name]
	if !ok || c.group == nil {
		return "", false
	}
	return c.group.name, true
}
