package core

import (
	"errors"
	"testing"
	"time"

	"vampos/internal/msg"
)

// flakyKV crashes deterministically on a chosen key until replaced.
type flakyKV struct {
	kvComp
	crashKey string
}

func newFlakyKV(name, crashKey string) *flakyKV {
	f := &flakyKV{crashKey: crashKey}
	f.kvComp.name = name
	return f
}

func (f *flakyKV) Exports() map[string]Handler {
	exp := f.kvComp.Exports()
	orig := exp["put"]
	exp["put"] = func(ctx *Ctx, args msg.Args) (msg.Args, error) {
		if key, err := args.Str(0); err == nil && key == f.crashKey {
			panic("deterministic bug in flaky put")
		}
		return orig(ctx, args)
	}
	return exp
}

// fixedKV is the multi-version alternate: same interface, no bug.
func newFixedKV(name string) *kvComp {
	return &kvComp{name: name, initSeed: "fixed-version"}
}

func TestFallbackSwapsInOnDeterministicBug(t *testing.T) {
	flaky := newFlakyKV("kv", "poison")
	fixed := newFixedKV("kv")
	cfg := DaSConfig()
	cfg.MaxVirtualTime = time.Hour
	rt := NewRuntime(cfg)
	if err := rt.Register(flaky); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterFallback("kv", fixed); err != nil {
		t.Fatal(err)
	}
	err := rt.Run(func(c *Ctx) {
		mustCall(t, c, "kv", "put", "a", "1")
		mustCall(t, c, "kv", "put", "b", "2")
		// The poison key crashes the buggy version on every attempt; the
		// runtime swaps in the fixed version, replays the log, and the
		// retried call succeeds.
		rets := mustCall(t, c, "kv", "put", "poison", "3")
		if n, _ := rets.Int(0); n == 0 {
			t.Error("put returned no count")
		}
		// State written before the bug survived the version switch.
		rets = mustCall(t, c, "kv", "get", "a")
		if v, _ := rets.Str(0); v != "1" {
			t.Errorf("a = %q after version switch", v)
		}
		// The new version is serving (its init seed is visible).
		rets = mustCall(t, c, "kv", "get", "__boot")
		if v, _ := rets.Str(0); v != "fixed-version" {
			t.Errorf("__boot = %q, want fixed-version", v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.VersionSwitches() != 1 {
		t.Fatalf("VersionSwitches = %d, want 1", rt.VersionSwitches())
	}
	// Both the crash-triggered reboot and the version-switch reboot ran.
	var reasons []string
	for _, r := range rt.Reboots() {
		reasons = append(reasons, r.Reason)
	}
	found := false
	for _, r := range reasons {
		if r == "version-switch" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no version-switch reboot in %v", reasons)
	}
}

func TestFallbackThatAlsoFailsFailsStop(t *testing.T) {
	flaky := newFlakyKV("kv", "poison")
	alsoFlaky := newFlakyKV("kv", "poison")
	cfg := DaSConfig()
	cfg.MaxVirtualTime = time.Hour
	rt := NewRuntime(cfg)
	if err := rt.Register(flaky); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterFallback("kv", alsoFlaky); err != nil {
		t.Fatal(err)
	}
	err := rt.Run(func(c *Ctx) {
		_, err := c.Call("kv", "put", "poison", "x")
		if !errors.Is(err, ErrComponentFailed) {
			t.Errorf("double-buggy versions = %v, want ErrComponentFailed", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.VersionSwitches() != 1 {
		t.Fatalf("VersionSwitches = %d (one swap attempted)", rt.VersionSwitches())
	}
}

func TestRegisterFallbackValidation(t *testing.T) {
	rt := NewRuntime(DaSConfig())
	if err := rt.Register(&kvComp{name: "kv"}); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterFallback("ghost", &kvComp{name: "ghost"}); err == nil {
		t.Error("fallback for unknown component accepted")
	}
	if err := rt.RegisterFallback("kv", nil); err == nil {
		t.Error("nil fallback accepted")
	}
	if err := rt.RegisterFallback("kv", &kvComp{name: "other"}); err == nil {
		t.Error("name-mismatched fallback accepted")
	}
}

func TestFailStopHandlerRunsOnceWithWorkingComponents(t *testing.T) {
	crasher := &detCrasher{name: "bad"}
	healthy := &kvComp{name: "kv"}
	cfg := DaSConfig()
	cfg.MaxVirtualTime = time.Hour
	rt := NewRuntime(cfg)
	if err := rt.Register(crasher); err != nil {
		t.Fatal(err)
	}
	if err := rt.Register(healthy); err != nil {
		t.Fatal(err)
	}
	handlerRuns := 0
	var failedComp string
	var savedViaHealthy bool
	rt.SetFailStopHandler(func(ctx *Ctx, component string) {
		handlerRuns++
		failedComp = component
		// The graceful-termination path: save state through a healthy
		// component (the paper's "store the in-memory KVs to storage").
		if _, err := ctx.Call("kv", "put", "lastrites", "saved"); err == nil {
			savedViaHealthy = true
		}
		// Calls into the dead group fail fast, not hang.
		if _, err := ctx.Call("bad", "boom"); !errors.Is(err, ErrComponentFailed) {
			t.Errorf("call into dead group = %v", err)
		}
	})
	err := rt.Run(func(c *Ctx) {
		_, err := c.Call("bad", "boom")
		if !errors.Is(err, ErrComponentFailed) {
			t.Fatalf("boom = %v", err)
		}
		// A second caller hitting the dead group must not re-run the
		// handler.
		_, _ = c.Call("bad", "boom")
		// Give the handler thread time to run.
		c.Sleep(10 * time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	if handlerRuns != 1 {
		t.Fatalf("handler ran %d times, want 1", handlerRuns)
	}
	if failedComp != "bad" {
		t.Fatalf("handler got component %q", failedComp)
	}
	if !savedViaHealthy {
		t.Fatal("handler could not save state through the healthy component")
	}
	if v := healthy.data["lastrites"]; v != "saved" {
		t.Fatalf("lastrites = %q", v)
	}
}
