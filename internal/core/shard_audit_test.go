package core

import (
	"testing"
	"time"

	"vampos/internal/msg"
	"vampos/internal/trace"
)

// These tests pin the three sites the sharded-baton audit found to be
// leaning on single-baton assumptions: pendingInOrder's wake ordering,
// the watchdog's hang attribution across a cross-shard call chain, and
// the trace recorder's canonical ordering when events are emitted from
// concurrent round slices.

// TestPendingInOrderAscendingSeq: rt.pending is a map, and Go's map
// iteration order varies per process run. Resolution order decides the
// order blocked callers wake in — which feeds the run queue, which
// decides what the log records next — so pendingInOrder must return
// strictly ascending seq regardless of insertion order.
func TestPendingInOrderAscendingSeq(t *testing.T) {
	rt := &Runtime{pending: make(map[uint64]*pendingCall)}
	seqs := []uint64{9, 2, 31, 7, 1, 30, 4, 18}
	for _, seq := range seqs {
		rt.pending[seq] = &pendingCall{seq: seq}
	}
	got := rt.pendingInOrder()
	if len(got) != len(seqs) {
		t.Fatalf("pendingInOrder returned %d calls, want %d", len(got), len(seqs))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].seq >= got[i].seq {
			t.Fatalf("pendingInOrder not strictly ascending at %d: %d then %d",
				i, got[i-1].seq, got[i].seq)
		}
	}
}

// hangEcho is a downstream component whose echo handler hangs once on a
// trigger value, then (the trigger cleared before the hang, mirroring
// kvComp) serves the retry normally after the watchdog reboots it.
type hangEcho struct {
	name   string
	hangOn string
}

func (h *hangEcho) Describe() Descriptor {
	return Descriptor{Name: h.name, Stateful: true, HeapPages: 16, DomainPages: 16}
}

func (h *hangEcho) Init(*Ctx) error { return nil }

func (h *hangEcho) Exports() map[string]Handler {
	return map[string]Handler{
		"echo": func(ctx *Ctx, args msg.Args) (msg.Args, error) {
			s, err := args.Str(0)
			if err != nil {
				return nil, err
			}
			if h.hangOn != "" && s == h.hangOn {
				h.hangOn = ""
				for {
					ctx.Sleep(10 * time.Second)
				}
			}
			return msg.Args{s + "!"}, nil
		},
	}
}

// relay forwards its one export to a downstream component, so the relay
// worker blocks mid-handler on a cross-shard call while the downstream
// executes.
type relay struct {
	name, backend string
}

func (r *relay) Describe() Descriptor {
	return Descriptor{Name: r.name, Stateful: true, HeapPages: 16, DomainPages: 16}
}

func (r *relay) Init(*Ctx) error { return nil }

func (r *relay) Exports() map[string]Handler {
	return map[string]Handler{
		"relay": func(ctx *Ctx, args msg.Args) (msg.Args, error) {
			s, err := args.Str(0)
			if err != nil {
				return nil, err
			}
			return ctx.Call(r.backend, "echo", s)
		},
	}
}

// TestWatchdogCrossShardHangAttribution: under the sharded engine the
// relay group and its downstream live on different shard batons. When
// the downstream hangs, the relay's worker is also busy past the
// threshold — but only because it is blocked on the cross-shard call.
// The watchdog must skip the blocked caller (awaitingDownstream) and
// reboot the component that is actually stuck; rebooting the relay
// would tear down an innocent domain and still leave the hang in place.
func TestWatchdogCrossShardHangAttribution(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		echo := &hangEcho{name: "echo", hangOn: "stuck"}
		front := &relay{name: "front", backend: "echo"}
		cfg := DaSConfig()
		cfg.Shards = shards
		cfg.HangThreshold = 500 * time.Millisecond
		cfg.WatchdogPeriod = 50 * time.Millisecond
		rt := run(t, cfg, []Component{front, echo}, func(c *Ctx) {
			// Hangs downstream; the watchdog reboots echo, the relay's
			// call retries transparently, and the reply comes back.
			rets := mustCall(t, c, "front", "relay", "stuck")
			if v, _ := rets.Str(0); v != "stuck!" {
				t.Errorf("shards=%d: relay = %q, want stuck!", shards, v)
			}
		})
		if rt.Stats().Hangs != 1 {
			t.Fatalf("shards=%d: Hangs = %d, want 1", shards, rt.Stats().Hangs)
		}
		reboots := rt.Reboots()
		if len(reboots) != 1 {
			t.Fatalf("shards=%d: reboots = %+v, want exactly one", shards, reboots)
		}
		if reboots[0].Group != "echo" {
			t.Fatalf("shards=%d: watchdog rebooted %q, want the hung downstream %q",
				shards, reboots[0].Group, "echo")
		}
		if reboots[0].Reason != "hang" {
			t.Fatalf("shards=%d: reboot reason %q, want hang", shards, reboots[0].Reason)
		}
		if fs, ok := rt.ComponentStats("front"); !ok || fs.Reboots != 0 {
			t.Fatalf("shards=%d: blocked caller was rebooted (%+v)", shards, fs)
		}
	}
}

// TestTraceCanonicalOrderUnderRounds: trace events are emitted from
// concurrent runner goroutines during a round, so ring insertion order
// is not causal order. The recorder's contract is that Snapshot restores
// the canonical view: sorted by virtual start time with parents before
// children (a parent's span id is always lower — ids are allocated under
// the recorder lock before any child can reference them).
func TestTraceCanonicalOrderUnderRounds(t *testing.T) {
	kva := &kvComp{name: "kva"}
	kvb := &kvComp{name: "kvb"}
	cfg := DaSConfig()
	cfg.Shards = 2
	cfg.MaxVirtualTime = time.Hour
	rt := NewRuntime(cfg)
	for _, c := range []Component{kva, kvb} {
		if err := rt.Register(c); err != nil {
			t.Fatal(err)
		}
	}
	rec := rt.NewTracer("audit", trace.WithCapacity(1<<12))
	err := rt.Run(func(c *Ctx) {
		done := 0
		for i, name := range []string{"kva", "kvb"} {
			name := name
			c.GoShard("dom"+name, 10+i, func(cc *Ctx) {
				defer cc.Thread().Do(func() { done++ })
				for j := 0; j < 8; j++ {
					mustCall(t, cc, name, "put", "k", "v")
					mustCall(t, cc, name, "get", "k")
				}
			})
		}
		for done < 2 {
			c.Sleep(time.Millisecond)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rt.SchedStats().Rounds == 0 {
		t.Fatal("workload formed no parallel rounds; the test exercises nothing")
	}
	evs := rec.Snapshot()
	if len(evs) == 0 {
		t.Fatal("empty trace")
	}
	byID := make(map[trace.SpanID]int, len(evs))
	for i, e := range evs {
		if i > 0 {
			prev := evs[i-1]
			if e.VirtStart < prev.VirtStart ||
				(e.VirtStart == prev.VirtStart && e.ID < prev.ID) {
				t.Fatalf("snapshot out of canonical order at %d: (%v,%d) after (%v,%d)",
					i, e.VirtStart, e.ID, prev.VirtStart, prev.ID)
			}
		}
		byID[e.ID] = i
	}
	for _, e := range evs {
		if e.Parent == 0 {
			continue
		}
		pi, ok := byID[e.Parent]
		if !ok {
			continue // parent evicted from the ring: fine, rings are bounded
		}
		p := evs[pi]
		if p.ID >= e.ID {
			t.Fatalf("child %d (%s %s) has parent id %d >= its own: causality inverted",
				e.ID, e.Kind, e.Name, p.ID)
		}
		if p.VirtStart > e.VirtStart {
			t.Fatalf("parent %d starts at %v after child %d at %v",
				p.ID, p.VirtStart, e.ID, e.VirtStart)
		}
	}
}
