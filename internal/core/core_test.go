package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"strconv"
	"testing"
	"time"

	"vampos/internal/msg"
)

// kvComp is a stateful toy component: a string->string store with
// session semantics mimicking a file table, used to exercise logging,
// checkpointing, replay and shrinking end to end.
type kvComp struct {
	name      string
	data      map[string]string
	initCount int
	// backend, when set, makes put() call out to another component and
	// fold the result in — exercising outbound return-value logging.
	backend string
	// panicOn makes the named key crash the handler (fault injection).
	panicOn string
	// hangOn makes the named key sleep forever (hang injection).
	hangOn string
	// checkpointed selects checkpoint-based initialization.
	checkpointed bool
	// initSeed is installed by Init; lets tests observe re-inits.
	initSeed string
}

func (k *kvComp) Describe() Descriptor {
	return Descriptor{
		Name: k.name, Stateful: true, Checkpoint: k.checkpointed,
		HeapPages: 16, DomainPages: 16,
	}
}

func (k *kvComp) Init(ctx *Ctx) error {
	k.initCount++
	k.data = map[string]string{"__boot": k.initSeed}
	return nil
}

func (k *kvComp) Reset() { k.data = nil }

func (k *kvComp) Exports() map[string]Handler {
	return map[string]Handler{
		"put":  k.put,
		"get":  k.get,
		"del":  k.del,
		"echo": k.echo,
	}
}

func (k *kvComp) put(ctx *Ctx, args msg.Args) (msg.Args, error) {
	key, err := args.Str(0)
	if err != nil {
		return nil, err
	}
	val, err := args.Str(1)
	if err != nil {
		return nil, err
	}
	if k.panicOn != "" && key == k.panicOn {
		k.panicOn = "" // non-deterministic fault: next attempt succeeds
		panic("injected crash in put")
	}
	if k.hangOn != "" && key == k.hangOn {
		k.hangOn = ""
		for {
			ctx.Sleep(10 * time.Second)
		}
	}
	if k.backend != "" {
		rets, err := ctx.Call(k.backend, "echo", val)
		if err != nil {
			return nil, err
		}
		val, err = rets.Str(0)
		if err != nil {
			return nil, err
		}
	}
	k.data[key] = val
	return msg.Args{len(k.data)}, nil
}

func (k *kvComp) get(ctx *Ctx, args msg.Args) (msg.Args, error) {
	key, err := args.Str(0)
	if err != nil {
		return nil, err
	}
	v, ok := k.data[key]
	if !ok {
		return nil, ENOENT
	}
	return msg.Args{v}, nil
}

func (k *kvComp) del(ctx *Ctx, args msg.Args) (msg.Args, error) {
	key, err := args.Str(0)
	if err != nil {
		return nil, err
	}
	delete(k.data, key)
	return nil, nil
}

func (k *kvComp) echo(ctx *Ctx, args msg.Args) (msg.Args, error) {
	s, err := args.Str(0)
	if err != nil {
		return nil, err
	}
	return msg.Args{s + "!"}, nil
}

func (k *kvComp) LogPolicies() map[string]LogPolicy {
	bySessionKey := func(class msg.Class) LogPolicy {
		return LogPolicy{Classify: func(args, rets msg.Args, callErr error) (msg.SessionID, msg.Class) {
			key, err := args.Str(0)
			if err != nil {
				return "", msg.ClassDurable
			}
			return msg.SessionID("k:" + key), class
		}}
	}
	return map[string]LogPolicy{
		"put": bySessionKey(msg.ClassOpener),
		"del": bySessionKey(msg.ClassCanceler),
		// "get" is state-unchanged: not logged at all.
	}
}

func (k *kvComp) SaveState() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(k.data); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (k *kvComp) RestoreState(p []byte) error {
	// Decode into a fresh map and replace: gob merges into a non-nil
	// destination map, which would silently keep post-image keys alive —
	// exactly what a taint-aware rollback must shed.
	data := make(map[string]string)
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&data); err != nil {
		return err
	}
	k.data = data
	return nil
}

var (
	_ StateSaver        = (*kvComp)(nil)
	_ LogPolicyProvider = (*kvComp)(nil)
	_ ColdResetter      = (*kvComp)(nil)
)

// statelessComp counts its inits; reboots must re-run Init.
type statelessComp struct {
	name      string
	initCount int
}

func (s *statelessComp) Describe() Descriptor {
	return Descriptor{Name: s.name, HeapPages: 4, DomainPages: 4}
}

func (s *statelessComp) Init(*Ctx) error {
	s.initCount++
	return nil
}

func (s *statelessComp) Exports() map[string]Handler {
	return map[string]Handler{
		"pid": func(*Ctx, msg.Args) (msg.Args, error) {
			return msg.Args{4242}, nil
		},
	}
}

// virtioStub is unrebootable, like the real VIRTIO component.
type virtioStub struct{}

func (virtioStub) Describe() Descriptor {
	return Descriptor{Name: "virtio", Unrebootable: true, HeapPages: 4, DomainPages: 4}
}
func (virtioStub) Init(*Ctx) error             { return nil }
func (virtioStub) Exports() map[string]Handler { return map[string]Handler{} }

// run executes main on a fresh runtime with the given components.
func run(t *testing.T, cfg Config, comps []Component, main func(*Ctx)) *Runtime {
	t.Helper()
	cfg.MaxVirtualTime = time.Hour
	rt := NewRuntime(cfg)
	for _, c := range comps {
		if err := rt.Register(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Run(main); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rt
}

func mustCall(t *testing.T, c *Ctx, target, fn string, args ...any) msg.Args {
	t.Helper()
	rets, err := c.Call(target, fn, args...)
	if err != nil {
		t.Fatalf("%s.%s: %v", target, fn, err)
	}
	return rets
}

func TestVanillaDirectCalls(t *testing.T) {
	kv := &kvComp{name: "kv"}
	rt := run(t, VanillaConfig(), []Component{kv}, func(c *Ctx) {
		mustCall(t, c, "kv", "put", "a", "1")
		rets := mustCall(t, c, "kv", "get", "a")
		if v, _ := rets.Str(0); v != "1" {
			t.Errorf("get = %q, want 1", v)
		}
	})
	st := rt.Stats()
	if st.DirectCalls == 0 || st.Messages != 0 {
		t.Fatalf("vanilla stats = %+v, want direct calls only", st)
	}
	if rt.LogLen("kv") != 0 {
		t.Fatalf("vanilla logged %d entries, want 0", rt.LogLen("kv"))
	}
}

func TestMessagePassingCallAndLogging(t *testing.T) {
	kv := &kvComp{name: "kv"}
	rt := run(t, DaSConfig(), []Component{kv}, func(c *Ctx) {
		mustCall(t, c, "kv", "put", "a", "1")
		mustCall(t, c, "kv", "put", "b", "2")
		rets := mustCall(t, c, "kv", "get", "a")
		if v, _ := rets.Str(0); v != "1" {
			t.Errorf("get = %q", v)
		}
		_, err := c.Call("kv", "get", "missing")
		if !errors.Is(err, ENOENT) {
			t.Errorf("get missing = %v, want ENOENT", err)
		}
	})
	if st := rt.Stats(); st.Messages != 4 {
		t.Fatalf("Messages = %d, want 4", st.Messages)
	}
	// puts logged, gets not
	if got := rt.LogLen("kv"); got != 2 {
		t.Fatalf("log length = %d, want 2", got)
	}
}

func TestUnknownTargets(t *testing.T) {
	run(t, DaSConfig(), []Component{&kvComp{name: "kv"}}, func(c *Ctx) {
		var uc *UnknownComponentError
		if _, err := c.Call("nope", "x"); !errors.As(err, &uc) {
			t.Errorf("unknown component error = %v", err)
		}
		var uf *UnknownFunctionError
		if _, err := c.Call("kv", "nope"); !errors.As(err, &uf) {
			t.Errorf("unknown function error = %v", err)
		}
	})
}

func TestCrashTriggersRebootAndReplayRestoresState(t *testing.T) {
	kv := &kvComp{name: "kv", panicOn: "bomb"}
	var failures []string
	rt := NewRuntime(DaSConfig())
	rt.SetFailureObserver(func(comp, reason string) { failures = append(failures, comp) })
	if err := rt.Register(kv); err != nil {
		t.Fatal(err)
	}
	err := rt.Run(func(c *Ctx) {
		mustCall(t, c, "kv", "put", "a", "1")
		mustCall(t, c, "kv", "put", "b", "2")
		// This put crashes the component; the runtime reboots it,
		// replays the log, retries the same input once, and the retry
		// succeeds (non-deterministic fault).
		mustCall(t, c, "kv", "put", "bomb", "3")
		// State written before the crash must have survived via replay.
		rets := mustCall(t, c, "kv", "get", "a")
		if v, _ := rets.Str(0); v != "1" {
			t.Errorf("a = %q after recovery, want 1", v)
		}
		rets = mustCall(t, c, "kv", "get", "bomb")
		if v, _ := rets.Str(0); v != "3" {
			t.Errorf("bomb = %q after retry, want 3", v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || failures[0] != "kv" {
		t.Fatalf("failures = %v, want [kv]", failures)
	}
	reboots := rt.Reboots()
	if len(reboots) != 1 {
		t.Fatalf("reboot records = %d, want 1", len(reboots))
	}
	r := reboots[0]
	if r.ReplayedEntries != 2 {
		t.Errorf("replayed %d entries, want 2 (a and b)", r.ReplayedEntries)
	}
	if kv.initCount != 2 {
		t.Errorf("initCount = %d, want 2 (boot + cold re-init)", kv.initCount)
	}
	cs, _ := rt.ComponentStats("kv")
	if cs.Failures != 1 || cs.Reboots != 1 {
		t.Errorf("component stats = %+v", cs)
	}
}

func TestDeterministicCrashFailsStop(t *testing.T) {
	det := &detCrasher{name: "kv"}
	run(t, DaSConfig(), []Component{det}, func(c *Ctx) {
		_, err := c.Call("kv", "boom")
		if !errors.Is(err, ErrComponentFailed) {
			t.Errorf("deterministic crash = %v, want ErrComponentFailed", err)
		}
		// Subsequent calls fail fast.
		_, err = c.Call("kv", "boom")
		if !errors.Is(err, ErrComponentFailed) {
			t.Errorf("post-fail-stop call = %v, want ErrComponentFailed", err)
		}
	})
}

// detCrasher panics on every invocation: a deterministic bug.
type detCrasher struct {
	name string
}

func (d *detCrasher) Describe() Descriptor {
	return Descriptor{Name: d.name, Stateful: true, HeapPages: 4, DomainPages: 4}
}
func (d *detCrasher) Init(*Ctx) error { return nil }
func (d *detCrasher) Exports() map[string]Handler {
	return map[string]Handler{
		"boom": func(*Ctx, msg.Args) (msg.Args, error) { panic("deterministic") },
	}
}

func TestHangDetectionTriggersReboot(t *testing.T) {
	kv := &kvComp{name: "kv", hangOn: "stuck"}
	cfg := DaSConfig()
	cfg.HangThreshold = 500 * time.Millisecond
	cfg.WatchdogPeriod = 50 * time.Millisecond
	rt := run(t, cfg, []Component{kv}, func(c *Ctx) {
		mustCall(t, c, "kv", "put", "a", "1")
		// Hangs, then the watchdog reboots kv and the retry succeeds.
		mustCall(t, c, "kv", "put", "stuck", "2")
		rets := mustCall(t, c, "kv", "get", "stuck")
		if v, _ := rets.Str(0); v != "2" {
			t.Errorf("stuck = %q, want 2", v)
		}
	})
	if rt.Stats().Hangs != 1 {
		t.Fatalf("Hangs = %d, want 1", rt.Stats().Hangs)
	}
	reboots := rt.Reboots()
	if len(reboots) != 1 || reboots[0].Reason != "hang" {
		t.Fatalf("reboots = %+v", reboots)
	}
}

func TestProactiveRebootKeepsState(t *testing.T) {
	kv := &kvComp{name: "kv"}
	rt := run(t, DaSConfig(), []Component{kv}, func(c *Ctx) {
		for i := 0; i < 10; i++ {
			mustCall(t, c, "kv", "put", "key"+strconv.Itoa(i), strconv.Itoa(i))
		}
		if err := c.Reboot("kv"); err != nil {
			t.Fatalf("Reboot: %v", err)
		}
		for i := 0; i < 10; i++ {
			rets := mustCall(t, c, "kv", "get", "key"+strconv.Itoa(i))
			if v, _ := rets.Str(0); v != strconv.Itoa(i) {
				t.Errorf("key%d = %q after rejuvenation", i, v)
			}
		}
	})
	reboots := rt.Reboots()
	if len(reboots) != 1 || reboots[0].Reason != "proactive" {
		t.Fatalf("reboots = %+v", reboots)
	}
	if reboots[0].ReplayedEntries != 10 {
		t.Fatalf("replayed = %d, want 10", reboots[0].ReplayedEntries)
	}
}

func TestCheckpointBasedReboot(t *testing.T) {
	kv := &kvComp{name: "kv", checkpointed: true, initSeed: "seed-v1"}
	rt := run(t, DaSConfig(), []Component{kv}, func(c *Ctx) {
		mustCall(t, c, "kv", "put", "x", "7")
		if err := c.Reboot("kv"); err != nil {
			t.Fatal(err)
		}
		// Post-checkpoint state restored from snapshot, not re-init.
		rets := mustCall(t, c, "kv", "get", "__boot")
		if v, _ := rets.Str(0); v != "seed-v1" {
			t.Errorf("__boot = %q, want seed from checkpoint", v)
		}
		rets = mustCall(t, c, "kv", "get", "x")
		if v, _ := rets.Str(0); v != "7" {
			t.Errorf("x = %q after checkpointed reboot", v)
		}
	})
	if kv.initCount != 1 {
		t.Fatalf("initCount = %d, want 1 (checkpoint restore, no re-init)", kv.initCount)
	}
	// kvComp keeps its state in Go structs (SaveState) and never touches
	// its arena, so its post-init image has no resident pages and the
	// resident-page restore accounting correctly bills zero.
	if got := rt.Reboots()[0].RestoredPages; got != 0 {
		t.Fatalf("restored pages = %d, want 0 (arena never written)", got)
	}
}

func TestSessionShrinkingAcrossRuntime(t *testing.T) {
	kv := &kvComp{name: "kv"}
	rt := run(t, DaSConfig(), []Component{kv}, func(c *Ctx) {
		mustCall(t, c, "kv", "put", "a", "1") // opener session k:a
		mustCall(t, c, "kv", "put", "b", "2") // opener session k:b
		mustCall(t, c, "kv", "del", "a")      // canceler session k:a
		mustCall(t, c, "kv", "put", "a", "3") // reuse discards closed pair
	})
	// k:a(open#2) + k:b(open) = 2 retained (old a pair dropped on reuse).
	if got := rt.LogLen("kv"); got != 3 {
		// open b, del-canceled pair removed on reuse, new open a, and the
		// canceler del itself was kept until reuse: recount precisely:
		// put a (opener), put b (opener), del a (canceler -> closes k:a),
		// put a (opener, reuse -> removes old put+del) = entries: put b, put a = 2? or 3.
		t.Logf("retained entries = %d", got)
	}
	if got := rt.LogLen("kv"); got != 2 {
		t.Fatalf("log length = %d, want 2 (put b + put a)", got)
	}
}

func TestOutboundLoggingAndEncapsulatedReplay(t *testing.T) {
	// kv calls out to "backend" inside put; during kv's replay the
	// backend must NOT be re-invoked: its results come from the log.
	backend := &countingEcho{name: "backend"}
	kv := &kvComp{name: "kv", backend: "backend"}
	rt := run(t, DaSConfig(), []Component{backend, kv}, func(c *Ctx) {
		mustCall(t, c, "kv", "put", "a", "1")
		calls := backend.calls
		if err := c.Reboot("kv"); err != nil {
			t.Fatal(err)
		}
		if backend.calls != calls {
			t.Errorf("backend invoked %d extra times during replay", backend.calls-calls)
		}
		rets := mustCall(t, c, "kv", "get", "a")
		if v, _ := rets.Str(0); v != "1!" {
			t.Errorf("a = %q after replay, want 1! (backend-transformed)", v)
		}
	})
	_ = rt
}

// countingEcho counts real invocations, to prove encapsulation.
type countingEcho struct {
	name  string
	calls int
}

func (e *countingEcho) Describe() Descriptor {
	return Descriptor{Name: e.name, HeapPages: 4, DomainPages: 4}
}
func (e *countingEcho) Init(*Ctx) error { return nil }
func (e *countingEcho) Exports() map[string]Handler {
	return map[string]Handler{
		"echo": func(_ *Ctx, args msg.Args) (msg.Args, error) {
			e.calls++
			s, err := args.Str(0)
			if err != nil {
				return nil, err
			}
			return msg.Args{s + "!"}, nil
		},
	}
}

func TestMergedGroupDirectCallsAndCompositeReboot(t *testing.T) {
	backend := &kvComp{name: "backend"}
	front := &kvComp{name: "front", backend: "backend"}
	cfg := DaSConfig()
	cfg.Merges = [][]string{{"front", "backend"}}
	rt := run(t, cfg, []Component{backend, front}, func(c *Ctx) {
		mustCall(t, c, "front", "put", "a", "1")
		mustCall(t, c, "backend", "put", "z", "9")
		// Rebooting either member reboots the composite.
		if err := c.Reboot("backend"); err != nil {
			t.Fatal(err)
		}
		rets := mustCall(t, c, "front", "get", "a")
		if v, _ := rets.Str(0); v != "1!" {
			t.Errorf("front a = %q, want 1!", v)
		}
		rets = mustCall(t, c, "backend", "get", "z")
		if v, _ := rets.Str(0); v != "9" {
			t.Errorf("backend z = %q, want 9", v)
		}
	})
	gf, _ := rt.GroupOf("front")
	gb, _ := rt.GroupOf("backend")
	if gf != gb {
		t.Fatalf("merged components in different groups: %q vs %q", gf, gb)
	}
	reboots := rt.Reboots()
	if len(reboots) != 1 || len(reboots[0].Components) != 2 {
		t.Fatalf("composite reboot records = %+v", reboots)
	}
	// Intra-group calls are direct.
	if rt.Stats().DirectCalls == 0 {
		t.Fatal("merged group made no direct calls")
	}
}

func TestStatelessRebootReInits(t *testing.T) {
	sc := &statelessComp{name: "process"}
	run(t, DaSConfig(), []Component{sc}, func(c *Ctx) {
		rets := mustCall(t, c, "process", "pid")
		if v, _ := rets.Int(0); v != 4242 {
			t.Errorf("pid = %d", v)
		}
		if err := c.Reboot("process"); err != nil {
			t.Fatal(err)
		}
		mustCall(t, c, "process", "pid")
	})
	if sc.initCount != 2 {
		t.Fatalf("initCount = %d, want 2", sc.initCount)
	}
}

func TestUnrebootableRefused(t *testing.T) {
	run(t, DaSConfig(), []Component{virtioStub{}}, func(c *Ctx) {
		if err := c.Reboot("virtio"); !errors.Is(err, ErrUnrebootable) {
			t.Errorf("Reboot(virtio) = %v, want ErrUnrebootable", err)
		}
	})
}

func TestRebootRequiresMessagePassing(t *testing.T) {
	run(t, VanillaConfig(), []Component{&kvComp{name: "kv"}}, func(c *Ctx) {
		if err := c.Reboot("kv"); err == nil {
			t.Error("vanilla Reboot succeeded, want error")
		}
	})
}

func TestConcurrentAppThreads(t *testing.T) {
	kv := &kvComp{name: "kv"}
	run(t, DaSConfig(), []Component{kv}, func(c *Ctx) {
		done := 0
		for i := 0; i < 8; i++ {
			i := i
			c.Go("worker"+strconv.Itoa(i), func(wc *Ctx) {
				for j := 0; j < 20; j++ {
					mustCall(t, wc, "kv", "put", strconv.Itoa(i)+"/"+strconv.Itoa(j), "v")
				}
				done++
			})
		}
		for done < 8 {
			c.Sleep(time.Millisecond)
		}
		if len(kv.data) != 8*20+1 { // +1 for __boot
			t.Errorf("kv has %d entries, want %d", len(kv.data), 8*20+1)
		}
	})
}

func TestRejuvenationUnderLoadLosesNothing(t *testing.T) {
	// The Table V property at runtime scale: reboot the component every
	// N requests while a writer hammers it; every request must succeed.
	kv := &kvComp{name: "kv"}
	run(t, DaSConfig(), []Component{kv}, func(c *Ctx) {
		writerDone := false
		var failed int
		c.Go("writer", func(wc *Ctx) {
			for j := 0; j < 200; j++ {
				if _, err := wc.Call("kv", "put", "k"+strconv.Itoa(j), "v"); err != nil {
					failed++
				}
			}
			writerDone = true
		})
		for i := 0; !writerDone; i++ {
			if err := c.Reboot("kv"); err != nil {
				t.Fatalf("rejuvenation %d: %v", i, err)
			}
			c.Sleep(100 * time.Microsecond)
		}
		if failed != 0 {
			t.Errorf("%d requests failed across rejuvenations, want 0", failed)
		}
	})
}

func TestInjectFireAndForget(t *testing.T) {
	kv := &kvComp{name: "kv"}
	rt := run(t, DaSConfig(), []Component{kv}, func(c *Ctx) {
		if err := c.rt.Inject(c, "kv", "put", "irq", "1"); err != nil {
			t.Fatal(err)
		}
		// The injection completes asynchronously; poll for it.
		for {
			rets, err := c.Call("kv", "get", "irq")
			if err == nil {
				if v, _ := rets.Str(0); v == "1" {
					break
				}
			}
			c.Sleep(10 * time.Microsecond)
		}
	})
	if rt.Stats().Injects != 1 {
		t.Fatalf("Injects = %d, want 1", rt.Stats().Injects)
	}
}

func TestKeysInUseMatchesPaperBudget(t *testing.T) {
	comps := []Component{}
	for _, n := range []string{"a", "b", "c", "d", "e", "f", "g"} {
		comps = append(comps, &statelessComp{name: n})
	}
	rt := run(t, DaSConfig(), comps, func(c *Ctx) {})
	// app + 7 components + message domain + scheduler = 10 tags, the
	// paper's SQLite figure.
	if got := rt.KeysInUse(); got != 10 {
		t.Fatalf("KeysInUse = %d, want 10", got)
	}
}

func TestTooManyComponentsExhaustKeys(t *testing.T) {
	rt := NewRuntime(DaSConfig())
	for i := 0; i < 13; i++ {
		if err := rt.Register(&statelessComp{name: "c" + strconv.Itoa(i)}); err != nil {
			t.Fatal(err)
		}
	}
	err := rt.Run(func(*Ctx) {})
	if err == nil {
		t.Fatal("13 components fit in 16 keys with 3 reserved + key 0, want failure")
	}
}

func TestRoundRobinConfigServesCalls(t *testing.T) {
	kv := &kvComp{name: "kv"}
	rt := run(t, NoopConfig(), []Component{kv}, func(c *Ctx) {
		mustCall(t, c, "kv", "put", "a", "1")
		rets := mustCall(t, c, "kv", "get", "a")
		if v, _ := rets.Str(0); v != "1" {
			t.Errorf("get = %q", v)
		}
		c.Runtime().Stop()
	})
	_ = rt
}

func TestDaSUsesFewerDispatchesThanNoop(t *testing.T) {
	// The Fig. 5 mechanism: same workload, round-robin vs
	// dependency-aware; DaS must need fewer dispatches per call.
	load := func(cfg Config, extra int) uint64 {
		comps := []Component{&kvComp{name: "kv"}}
		for i := 0; i < extra; i++ {
			comps = append(comps, &statelessComp{name: "idle" + strconv.Itoa(i)})
		}
		rt := run(t, cfg, comps, func(c *Ctx) {
			for j := 0; j < 50; j++ {
				mustCall(t, c, "kv", "put", "k", "v")
			}
			c.Runtime().Stop()
		})
		return rt.SchedStats().Dispatches
	}
	noop := load(NoopConfig(), 6)
	das := load(DaSConfig(), 6)
	if das >= noop {
		t.Fatalf("DaS dispatches (%d) not fewer than Noop (%d)", das, noop)
	}
}

func TestVirtualTimeChargedPerMechanism(t *testing.T) {
	kv := &kvComp{name: "kv"}
	rt := run(t, DaSConfig(), []Component{kv}, func(c *Ctx) {
		start := c.Elapsed()
		mustCall(t, c, "kv", "put", "a", "1")
		if c.Elapsed() <= start {
			t.Error("message-passing call advanced no virtual time")
		}
	})
	_ = rt
}

func TestRegisterValidation(t *testing.T) {
	rt := NewRuntime(DaSConfig())
	if err := rt.Register(&kvComp{name: "kv"}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Register(&kvComp{name: "kv"}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := rt.Register(&kvComp{name: ""}); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestMergeValidation(t *testing.T) {
	cfg := DaSConfig()
	cfg.Merges = [][]string{{"kv"}}
	rt := NewRuntime(cfg)
	if err := rt.Register(&kvComp{name: "kv"}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(func(*Ctx) {}); err == nil {
		t.Fatal("single-member merge accepted")
	}

	cfg = DaSConfig()
	cfg.Merges = [][]string{{"kv", "ghost"}}
	rt = NewRuntime(cfg)
	if err := rt.Register(&kvComp{name: "kv"}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(func(*Ctx) {}); err == nil {
		t.Fatal("merge with unknown member accepted")
	}
}
