package core

import (
	"fmt"
	//vampos:allow schedonly -- recMu guards reboot/full-restart records snapshotted by campaign worker goroutines while simulated threads append
	"sync"
	"time"

	"vampos/internal/ckpt"
	"vampos/internal/clock"
	"vampos/internal/mem"
	"vampos/internal/microreboot"
	"vampos/internal/msg"
	"vampos/internal/sched"
	"vampos/internal/trace"
)

// Protection-key layout. The paper's tag budget per application (e.g.
// "app + nine components + message domain + thread scheduler = 12 tags"
// for Redis/Nginx) maps directly onto this assignment.
const (
	keyDefault   mem.Key = 0 // boot/bootstrap pages
	keyScheduler mem.Key = 1 // scheduler metadata
	keyDomains   mem.Key = 2 // all message domains share one tag
	keyApp       mem.Key = 3 // application heap
	keyFirstComp mem.Key = 4 // first component group key
)

// CostModel charges virtual time for runtime mechanisms so that
// experiment timelines measured on the virtual clock reflect the paper's
// cost structure (message hops, log writes, snapshot loads). Constants
// are calibrated against the paper's Unikraft/Xeon measurements; wall
// clock benchmarks are reported separately by the bench harness.
type CostModel struct {
	Dispatch        time.Duration // one context switch
	MessagePush     time.Duration // argument copy into a message domain
	MessagePull     time.Duration // message removal by the receiver
	DirectCall      time.Duration // vanilla / intra-merge function call
	LogAppend       time.Duration // one log record write
	SnapshotPerPage time.Duration // checkpoint restore, per page
	ReplayPerEntry  time.Duration // one replayed log record
	ColdInit        time.Duration // stateless re-initialisation
}

// DefaultCostModel returns the calibrated defaults.
func DefaultCostModel() CostModel {
	return CostModel{
		Dispatch:        200 * time.Nanosecond,
		MessagePush:     120 * time.Nanosecond,
		MessagePull:     80 * time.Nanosecond,
		DirectCall:      60 * time.Nanosecond,
		LogAppend:       80 * time.Nanosecond,
		SnapshotPerPage: 10 * time.Microsecond,
		ReplayPerEntry:  2 * time.Microsecond,
		ColdInit:        5 * time.Microsecond,
	}
}

// Runtime is one booted VampOS unikernel: its address space, scheduler,
// components, message thread and reboot manager.
type Runtime struct {
	cfg   Config
	costs CostModel
	clk   *clock.Virtual
	sch   *sched.Scheduler
	memry *mem.Memory

	comps   map[string]*component
	order   []*component // registration order = boot order
	groups  []*group
	nextKey mem.Key

	appHeapBase  mem.Addr
	appHeapPages int
	appHeap      *mem.Buddy

	msgThread  *sched.Thread
	bootThread *sched.Thread
	mq         []mqItem
	pending    map[uint64]*pendingCall
	nextSeq    uint64

	booted  bool
	stopped bool

	stats runtimeCounters
	// recMu guards reboots, microreboots and fullRestarts: appended to by
	// simulated threads, snapshotted by Reboots()/Microreboots()/
	// FullRestarts() from any goroutine.
	recMu        sync.Mutex
	reboots      []RebootRecord
	microreboots []MicrorebootRecord
	fullRestarts []FullRestartStats
	// armedMu guards armed: checkFault runs inside handler slices, which
	// under the sharded-baton engine execute concurrently across shards,
	// while campaigns arm and inspect from outside the scheduler.
	armedMu sync.Mutex
	armed   map[string]*armedFault

	// sessions tracks every live session sub-resource for rung-1
	// recovery; nil unless cfg.Microreboot (all registry methods are
	// nil-safe, so hooks stay unconditional).
	sessions *microreboot.Registry

	// agingDriver is the adaptive-rejuvenation controller Boot starts
	// when cfg.Aging is enabled (nil otherwise or when one was created
	// manually with NewAgingDriver).
	agingDriver *AgingDriver

	// tracer is the optional flight recorder. It lives in host memory,
	// outside every component domain, so reboots cannot destroy it. A
	// nil tracer is the common case and must stay free: every hook is a
	// nil check away from doing nothing.
	tracer *trace.Recorder

	// onComponentFailure, if set, observes every detected failure.
	onComponentFailure func(component, reason string)
	// onFailStop, if set, runs the graceful-termination handler when a
	// group fail-stops permanently (§VIII).
	onFailStop func(ctx *Ctx, component string)
}

// NewRuntime creates an unbooted runtime with the given configuration.
func NewRuntime(cfg Config) *Runtime {
	cfg = cfg.fill()
	clk := clock.NewVirtual()
	var policy sched.Policy
	if cfg.MessagePassing && cfg.Policy == PolicyDependencyAware {
		policy = sched.NewDependencyAware()
	} else {
		policy = sched.NewRoundRobin()
	}
	s := sched.New(clk, policy)
	m := mem.New(cfg.MemorySize)
	if err := s.SetMemory(m); err != nil {
		panic(err) // fresh scheduler; cannot already have memory
	}
	s.SetDispatchCost(DefaultCostModel().Dispatch)
	if cfg.MessagePassing && cfg.Shards > 0 {
		s.SetShards(cfg.Shards)
	}
	rt := &Runtime{
		cfg:     cfg,
		costs:   DefaultCostModel(),
		clk:     clk,
		sch:     s,
		memry:   m,
		comps:   make(map[string]*component),
		nextKey: keyFirstComp,
		pending: make(map[uint64]*pendingCall),
	}
	if cfg.Microreboot {
		rt.sessions = microreboot.NewRegistry(clk.Elapsed)
	}
	return rt
}

// Config returns the runtime configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// SetCostModel replaces the virtual-time cost model. Must be called
// before Boot.
func (rt *Runtime) SetCostModel(c CostModel) {
	rt.costs = c
	rt.sch.SetDispatchCost(c.Dispatch)
}

// Clock returns the runtime's virtual clock.
func (rt *Runtime) Clock() *clock.Virtual { return rt.clk }

// SetTracer attaches a flight recorder. Call it before Boot so the
// restoration-log observers are installed; a nil recorder detaches
// tracing (the hooks then cost one predicted branch each).
func (rt *Runtime) SetTracer(r *trace.Recorder) {
	rt.tracer = r
	if r.CapturesDispatches() {
		rt.sch.SetDispatchObserver(func(t *sched.Thread) {
			r.Instant(0, trace.KindDispatch, t.Name(), "dispatch", "")
		})
	} else {
		rt.sch.SetDispatchObserver(nil)
	}
}

// Tracer returns the attached flight recorder (nil when tracing is off).
func (rt *Runtime) Tracer() *trace.Recorder { return rt.tracer }

// NewTracer creates a flight recorder on the runtime's virtual clock and
// attaches it.
func (rt *Runtime) NewTracer(name string, opts ...trace.Option) *trace.Recorder {
	r := trace.New(name, rt.clk.Elapsed, opts...)
	rt.SetTracer(r)
	return r
}

// Scheduler exposes the cooperative scheduler so that host-side threads
// (hypervisor services, workload clients) join the same simulation.
func (rt *Runtime) Scheduler() *sched.Scheduler { return rt.sch }

// Memory returns the guest address space.
func (rt *Runtime) Memory() *mem.Memory { return rt.memry }

// charge advances virtual time by the given mechanism cost. It may only
// be called from conductor-dispatched (live) contexts — the message
// thread, watchdog, and other system threads; code that can run inside a
// buffered round slice must use chargeOn with its thread.
func (rt *Runtime) charge(d time.Duration) {
	if d > 0 {
		rt.clk.Advance(d)
	}
}

// chargeOn advances virtual time on behalf of th: live when th holds the
// real baton, journaled into th's slice during a parallel round.
func (rt *Runtime) chargeOn(th *sched.Thread, d time.Duration) {
	if d <= 0 {
		return
	}
	if th != nil {
		th.Charge(d)
		return
	}
	rt.clk.Advance(d)
}

// Register adds a component. All registrations must happen before Boot;
// boot order follows registration order, so substrates register first.
func (rt *Runtime) Register(c Component) error {
	if rt.booted {
		return fmt.Errorf("core: Register after Boot")
	}
	d := c.Describe()
	if d.Name == "" {
		return fmt.Errorf("core: component with empty name")
	}
	if _, dup := rt.comps[d.Name]; dup {
		return fmt.Errorf("core: duplicate component %q", d.Name)
	}
	if d.HeapPages == 0 {
		d.HeapPages = rt.cfg.DefaultHeapPages
	}
	if d.DomainPages == 0 {
		d.DomainPages = rt.cfg.DefaultDomainPages
	}
	rec := &component{comp: c, desc: d, exports: c.Exports()}
	if lp, ok := c.(LogPolicyProvider); ok {
		rec.policies = lp.LogPolicies()
	}
	rt.comps[d.Name] = rec
	rt.order = append(rt.order, rec)
	return nil
}

// Component returns the registered component implementation by name, for
// tests and experiments that reach into substrate state.
func (rt *Runtime) Component(name string) (Component, bool) {
	c, ok := rt.comps[name]
	if !ok {
		return nil, false
	}
	return c.comp, true
}

// Components returns the registered component names in boot order.
func (rt *Runtime) Components() []string {
	out := make([]string, len(rt.order))
	for i, c := range rt.order {
		out[i] = c.desc.Name
	}
	return out
}

// KeysInUse returns how many MPK tags the configuration consumes:
// app + one per group + message domain + scheduler (paper §VI).
func (rt *Runtime) KeysInUse() int {
	return 3 + len(rt.groups) // scheduler, domains, app, groups
}

// buildGroups partitions components into merge groups and assigns keys.
func (rt *Runtime) buildGroups() error {
	merged := make(map[string]*group)
	for _, names := range rt.cfg.Merges {
		if len(names) < 2 {
			return fmt.Errorf("core: merge group %v needs at least two members", names)
		}
		g := &group{name: names[0]}
		for _, n := range names {
			c, ok := rt.comps[n]
			if !ok {
				return fmt.Errorf("core: merge of unknown component %q", n)
			}
			if c.group != nil {
				return fmt.Errorf("core: component %q in two merge groups", n)
			}
			if merged[n] != nil {
				return fmt.Errorf("core: component %q merged twice", n)
			}
			merged[n] = g
		}
		g.name = fmt.Sprintf("%s+", names[0])
	}
	// Build groups in registration order so key assignment is stable.
	seen := make(map[*group]bool)
	for _, c := range rt.order {
		g := merged[c.desc.Name]
		if g == nil {
			g = &group{name: c.desc.Name}
		}
		c.group = g
		g.members = append(g.members, c)
		if !seen[g] {
			seen[g] = true
			rt.groups = append(rt.groups, g)
		}
	}
	for _, g := range rt.groups {
		if len(g.members) > 1 {
			names := ""
			for i, m := range g.members {
				if i > 0 {
					names += "+"
				}
				names += m.desc.Name
			}
			g.name = names
		}
		if rt.nextKey >= mem.NumKeys {
			return fmt.Errorf("core: out of protection keys (%d groups; 16 keys)", len(rt.groups))
		}
		g.key = rt.nextKey
		rt.nextKey++
	}
	// Shard ordinals: one per group by registration order (ordinal 0 is
	// the application-thread shard), overridable per group. Ordinals are
	// assigned even when Shards is off so the assignment itself never
	// depends on the shard count.
	for i, g := range rt.groups {
		g.shard = i + 1
		if n, ok := rt.cfg.ShardOf[g.name]; ok && n >= 0 {
			g.shard = n
		}
	}
	return nil
}

// allocateRegions maps every component's heap and message domain.
func (rt *Runtime) allocateRegions() error {
	for _, g := range rt.groups {
		for _, c := range g.members {
			base, err := rt.memry.AllocPages(c.desc.HeapPages, g.key)
			if err != nil {
				return fmt.Errorf("core: heap for %q: %w", c.desc.Name, err)
			}
			heap, err := mem.NewBuddy(base, int64(c.desc.HeapPages)*mem.PageSize)
			if err != nil {
				return err
			}
			c.heapBase, c.heapPages, c.heap = base, c.desc.HeapPages, heap
			d, err := msg.NewDomain(c.desc.Name, rt.memry, keyDomains, c.desc.DomainPages)
			if err != nil {
				return err
			}
			d.Log().ShrinkEnabled = rt.cfg.LogShrinkEnabled
			if tr := rt.tracer; tr != nil {
				name := c.desc.Name
				d.Log().Observer = func(op, fn string, n int) {
					tr.Instant(0, trace.KindLogOp, name, op+" "+fn, fmt.Sprintf("n=%d", n))
				}
			}
			c.domain = d
		}
		// The group mailbox is the first member's domain.
		g.mailbox = g.members[0].domain
	}
	return nil
}

// Boot builds groups, maps memory, starts the message thread and the
// watchdog, and initialises every component in registration order —
// taking post-init checkpoints of the components that request them. It
// must run on a simulated thread; use Run for the common case.
func (rt *Runtime) Boot(boot *sched.Thread) error {
	if rt.booted {
		return fmt.Errorf("core: double Boot")
	}
	if err := rt.buildGroups(); err != nil {
		return err
	}
	if err := rt.allocateRegions(); err != nil {
		return err
	}
	rt.installTrackers()
	rt.installDefense()
	rt.booted = true
	rt.bootThread = boot
	if rt.cfg.MessagePassing {
		rt.msgThread = rt.sch.Spawn("vampos/msg", mem.Allow(keyDomains), rt.msgLoop)
		rt.sch.Spawn("vampos/watchdog", mem.Allow(keyScheduler), rt.watchdogLoop)
		if rt.cfg.Aging.Enabled() {
			// Adaptive rejuvenation controller: samples aging sensors on
			// the virtual clock and schedules checkpoint-aware rolling
			// reboots. Vanilla mode has no component reboots to schedule,
			// hence the message-passing gate.
			d := rt.NewAgingDriver(rt.cfg.Aging, rt.cfg.AgingTargets...)
			rt.agingDriver = d
			rt.sch.Spawn("vampos/aging", mem.Allow(keyScheduler), func(t *sched.Thread) {
				d.Run(&Ctx{rt: rt, th: t, appName: "aging"})
			})
		}
		// Spawn workers first so components can call each other during
		// later components' Init.
		for _, g := range rt.groups {
			rt.spawnWorker(g, false)
		}
		for _, g := range rt.groups {
			for _, c := range g.members {
				if err := rt.initComponentMP(boot, g, c); err != nil {
					return fmt.Errorf("core: init %q: %w", c.desc.Name, err)
				}
			}
		}
	} else {
		for _, c := range rt.order {
			ctx := &Ctx{rt: rt, comp: c, th: boot}
			if err := c.comp.Init(ctx); err != nil {
				return fmt.Errorf("core: init %q: %w", c.desc.Name, err)
			}
		}
	}
	return nil
}

// initComponentMP asks a group's worker to initialise one member, waits
// for completion, and takes the post-init checkpoint if requested.
func (rt *Runtime) initComponentMP(boot *sched.Thread, g *group, c *component) error {
	w := g.worker
	w.initQueue = append(w.initQueue, c)
	w.t.Wake()
	rt.sch.Hint(w.t)
	for !w.initDone[c] {
		boot.Block("await init " + c.desc.Name)
	}
	if err := w.initErr[c]; err != nil {
		return err
	}
	if c.desc.Stateful && c.desc.Checkpoint {
		if err := rt.takeCheckpoint(c); err != nil {
			return err
		}
	}
	return nil
}

// takeCheckpoint captures the component's post-init image (§V-E).
func (rt *Runtime) takeCheckpoint(c *component) error {
	snap, err := rt.memry.Snapshot(c.heapBase, c.heapPages)
	if err != nil {
		return err
	}
	cp := &checkpoint{memSnap: snap, heap: c.heap.Clone(), takenAt: rt.clk.Now()}
	if ss, ok := c.comp.(StateSaver); ok {
		blob, err := ss.SaveState()
		if err != nil {
			return fmt.Errorf("core: checkpoint %q: %w", c.desc.Name, err)
		}
		cp.control = blob
	}
	c.checkpoint = cp
	if c.images != nil {
		// Seed the defense image history with the post-init image: the
		// rollback target of last resort, covering no completed calls.
		c.images.Add(ckpt.ImageMeta{Epoch: c.domain.Log().Epoch(), EpochSeq: c.domain.Log().MaxCompletedSeq()}, cp)
	}
	return nil
}

// Run boots the runtime and executes main as the first application
// thread, then drives the simulation until main returns and every other
// thread finishes (or Stop is called). It returns the boot or scheduling
// error, if any.
func (rt *Runtime) Run(main func(*Ctx)) error {
	var bootErr error
	boot := rt.sch.Spawn("boot", mem.AllowAll, func(t *sched.Thread) {
		// Stop unconditionally — a panicking main must still end the
		// simulation rather than leave polling threads spinning.
		defer rt.sch.Stop()
		if bootErr = rt.Boot(t); bootErr != nil {
			return
		}
		if main != nil {
			main(rt.appCtx(t))
		}
	})
	if err := rt.sch.Run(); err != nil {
		return err
	}
	if bootErr != nil {
		return bootErr
	}
	if pv := boot.PanicValue(); pv != nil {
		return fmt.Errorf("core: application thread panicked: %v", pv)
	}
	return nil
}

// IRQContext builds a context for host-side code (device backends) that
// needs to inject virtual interrupts; the injection borrows whatever
// simulated thread is current when the IRQ fires.
func (rt *Runtime) IRQContext(name string) *Ctx {
	return &Ctx{rt: rt, appName: name}
}

// InjectIRQ fires a fire-and-forget call into a component from an IRQ
// context.
func (rt *Runtime) InjectIRQ(from *Ctx, target, fn string, args ...any) error {
	return rt.Inject(from, target, fn, args...)
}

// appCtx builds an application-thread context.
func (rt *Runtime) appCtx(t *sched.Thread) *Ctx {
	if rt.cfg.MessagePassing {
		t.SetPKRU(mem.Allow(keyApp))
	} else {
		t.SetPKRU(mem.AllowAll)
	}
	return &Ctx{rt: rt, th: t, appName: "app"}
}

// Stop halts the simulation.
func (rt *Runtime) Stop() {
	rt.stopped = true
	rt.sch.Stop()
}

// EnsureAppHeap lazily maps an application arena of npages (power of
// two) tagged with the application key, for applications that keep bulk
// data in guest memory.
func (rt *Runtime) EnsureAppHeap(npages int) (*mem.Buddy, error) {
	if rt.appHeap != nil {
		return rt.appHeap, nil
	}
	base, err := rt.memry.AllocPages(npages, keyApp)
	if err != nil {
		return nil, err
	}
	h, err := mem.NewBuddy(base, int64(npages)*mem.PageSize)
	if err != nil {
		return nil, err
	}
	rt.appHeapBase, rt.appHeapPages, rt.appHeap = base, npages, h
	return h, nil
}
