package core

import (
	"fmt"
	"time"

	"vampos/internal/mem"
	"vampos/internal/sched"
)

// This file implements the two recovery extensions the paper sketches in
// its discussion section (§VIII):
//
//   - Graceful termination with unrecoverable components: when a
//     component fail-stops permanently, the application gets a last
//     chance to save its state through the still-undamaged components
//     ("storing the current in-memory KVs in storage just before a
//     fail-stop is more helpful than eliminating all the KVs").
//
//   - Multi-version components for deterministic bugs: a registered
//     alternate implementation replaces a component whose retried input
//     fails again, eliminating the buggy code path instead of
//     fail-stopping.

// SetFailStopHandler registers fn to run when a component group
// fail-stops permanently. The handler runs on a fresh application
// thread, so it may call the remaining healthy components (calls into
// the dead group fail fast with ErrComponentFailed).
func (rt *Runtime) SetFailStopHandler(fn func(ctx *Ctx, component string)) {
	rt.onFailStop = fn
}

// notifyFailStop spawns the graceful-termination handler for a dead
// group, at most once per group.
func (rt *Runtime) notifyFailStop(g *group) {
	if rt.onFailStop == nil || g.failStopNotified {
		return
	}
	g.failStopNotified = true
	name := g.name
	handler := rt.onFailStop
	pkru := mem.PKRU(mem.AllowAll)
	if rt.cfg.MessagePassing {
		pkru = mem.Allow(keyApp)
	}
	rt.sch.Spawn("vampos/failstop", pkru, func(t *sched.Thread) {
		handler(&Ctx{rt: rt, th: t, appName: "failstop"}, name)
	})
}

// RegisterFallback installs an alternate implementation for a component
// (the multi-versioning of §VIII). When the component's retried input
// crashes again — the deterministic-bug signature — the runtime swaps in
// the alternate, cold-boots it, replays the retained log against it,
// and lets the caller retry once more instead of fail-stopping. The
// alternate must expose the same interface under the same name.
func (rt *Runtime) RegisterFallback(name string, alt Component) error {
	c, ok := rt.comps[name]
	if !ok {
		return &UnknownComponentError{Name: name}
	}
	if alt == nil {
		return fmt.Errorf("core: nil fallback for %q", name)
	}
	if alt.Describe().Name != name {
		return fmt.Errorf("core: fallback for %q describes itself as %q", name, alt.Describe().Name)
	}
	c.fallback = alt
	return nil
}

// VersionSwitches reports how many components were replaced by their
// fallback implementation.
func (rt *Runtime) VersionSwitches() uint64 { return rt.stats.versionSwitches.Load() }

// trySwapFallback replaces a deterministically failing component with
// its registered alternate and reboots the group around it. It runs on
// the caller's thread; it returns false when no unused fallback exists
// or the swapped-in version also fails to restore.
func (rt *Runtime) trySwapFallback(th *sched.Thread, tc *component) bool {
	if tc.fallback == nil || tc.fallbackUsed {
		return false
	}
	g := tc.group
	// Let any in-flight restoration settle before operating on the group.
	for g.rebooting {
		th.Sleep(10 * time.Microsecond)
	}
	tc.fallbackUsed = true
	tc.comp = tc.fallback
	tc.exports = tc.fallback.Exports()
	tc.policies = nil
	if lp, ok := tc.fallback.(LogPolicyProvider); ok {
		tc.policies = lp.LogPolicies()
	}
	// The old version's memory image means nothing to the new code:
	// discard the checkpoint so the swap cold-boots and replays.
	tc.checkpoint = nil
	tc.runtimeState = nil
	rt.stats.versionSwitches.Add(1)
	g.failedTwice = false
	rt.beginReboot(g, "version-switch", true, 0)
	for g.rebooting {
		th.Sleep(10 * time.Microsecond)
	}
	return !g.failedTwice
}
