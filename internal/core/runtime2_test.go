package core

import (
	"errors"
	"strconv"
	"testing"
	"time"

	"vampos/internal/msg"
)

func TestFullRestartScrubsEverything(t *testing.T) {
	kv := &kvComp{name: "kv", initSeed: "gen"}
	rt := run(t, DaSConfig(), []Component{kv}, func(c *Ctx) {
		for i := 0; i < 8; i++ {
			mustCall(t, c, "kv", "put", "k"+strconv.Itoa(i), "v")
		}
		if rt := c.Runtime(); rt.LogLen("kv") == 0 {
			t.Fatal("setup: nothing logged")
		}
		if err := c.Runtime().FullRestart(c); err != nil {
			t.Fatalf("FullRestart: %v", err)
		}
		// All volatile state gone; the component re-initialised.
		if _, err := c.Call("kv", "get", "k3"); !errors.Is(err, ENOENT) {
			t.Errorf("k3 after full restart = %v, want ENOENT", err)
		}
		if got := c.Runtime().LogLen("kv"); got != 0 {
			t.Errorf("log length after full restart = %d", got)
		}
		// And the instance keeps working.
		mustCall(t, c, "kv", "put", "fresh", "1")
		rets := mustCall(t, c, "kv", "get", "fresh")
		if v, _ := rets.Str(0); v != "1" {
			t.Errorf("fresh = %q", v)
		}
	})
	if kv.initCount != 2 {
		t.Fatalf("initCount = %d, want 2", kv.initCount)
	}
	if got := len(rt.FullRestarts()); got != 1 {
		t.Fatalf("FullRestarts records = %d", got)
	}
}

func TestFullRestartVanilla(t *testing.T) {
	kv := &kvComp{name: "kv"}
	run(t, VanillaConfig(), []Component{kv}, func(c *Ctx) {
		mustCall(t, c, "kv", "put", "a", "1")
		if err := c.Runtime().FullRestart(c); err != nil {
			t.Fatalf("FullRestart: %v", err)
		}
		if _, err := c.Call("kv", "get", "a"); !errors.Is(err, ENOENT) {
			t.Errorf("a survives vanilla full restart: %v", err)
		}
	})
}

func TestFullRestartClearsFailStop(t *testing.T) {
	det := &detCrasher{name: "bad"}
	run(t, DaSConfig(), []Component{det}, func(c *Ctx) {
		if _, err := c.Call("bad", "boom"); !errors.Is(err, ErrComponentFailed) {
			t.Fatalf("setup: %v", err)
		}
		if err := c.Runtime().FullRestart(c); err != nil {
			t.Fatalf("FullRestart: %v", err)
		}
		// The whole-image reboot clears the fail-stop; the deterministic
		// bug then fires again on next use, as a real reboot would see.
		if _, err := c.Call("bad", "boom"); !errors.Is(err, ErrComponentFailed) {
			t.Fatalf("post-restart crash handling = %v", err)
		}
	})
}

func TestMaxVirtualTimeBackstop(t *testing.T) {
	cfg := DaSConfig()
	cfg.MaxVirtualTime = 2 * time.Second
	rt := NewRuntime(cfg)
	if err := rt.Register(&kvComp{name: "kv"}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := rt.Run(func(c *Ctx) {
		// A runaway controller that would spin forever in virtual time.
		for i := 0; i < 1_000_000; i++ {
			c.Sleep(time.Second)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Clock().Elapsed() > 10*time.Second {
		t.Fatalf("virtual clock ran to %v despite the backstop", rt.Clock().Elapsed())
	}
	if time.Since(start) > 30*time.Second {
		t.Fatal("backstop too slow in wall time")
	}
}

func TestDomainExhaustionSurfacesAsCallError(t *testing.T) {
	// A component with a tiny message domain: huge arguments cannot be
	// logged and the call fails with ENOSPC instead of corrupting state.
	kv := &tinyDomainKV{}
	kv.name = "kv"
	run(t, DaSConfig(), []Component{kv}, func(c *Ctx) {
		big := make([]byte, 64<<10)
		_, err := c.Call("kv", "blob", "k", big)
		if err == nil {
			t.Fatal("oversized logged call succeeded")
		}
		// Small calls still work afterwards.
		mustCall(t, c, "kv", "put", "a", "1")
	})
}

// tinyDomainKV is kvComp with a one-page message domain and a logged
// function taking arbitrarily large arguments.
type tinyDomainKV struct {
	kvComp
}

func (k *tinyDomainKV) Describe() Descriptor {
	d := k.kvComp.Describe()
	d.DomainPages = 1
	return d
}

func (k *tinyDomainKV) Exports() map[string]Handler {
	exp := k.kvComp.Exports()
	exp["blob"] = func(ctx *Ctx, args msg.Args) (msg.Args, error) {
		return nil, nil
	}
	return exp
}

func (k *tinyDomainKV) LogPolicies() map[string]LogPolicy {
	p := k.kvComp.LogPolicies()
	p["blob"] = LogPolicy{Classify: Durable}
	return p
}

func TestReplayDivergenceFailsStopSafely(t *testing.T) {
	// A component whose outbound call pattern depends on hidden state
	// that the replay cannot reproduce: the divergence must be detected
	// and the group fail-stopped, not silently corrupted.
	backend := &countingEcho{name: "backend"}
	dv := &divergentComp{}
	run(t, DaSConfig(), []Component{backend, dv}, func(c *Ctx) {
		mustCall(t, c, "diverge", "op") // outbound to backend.echo logged
		dv.flip = true                  // replay will issue a different call
		err := c.Reboot("diverge")
		if !errors.Is(err, ErrComponentFailed) {
			t.Fatalf("reboot with divergent replay = %v, want ErrComponentFailed", err)
		}
		if c.Runtime().Stats().FailedRestores != 1 {
			t.Fatalf("FailedRestores = %d", c.Runtime().Stats().FailedRestores)
		}
	})
}

type divergentComp struct {
	flip bool
}

func (d *divergentComp) Describe() Descriptor {
	return Descriptor{Name: "diverge", Stateful: true, HeapPages: 4, DomainPages: 8}
}
func (d *divergentComp) Init(*Ctx) error { return nil }
func (d *divergentComp) Exports() map[string]Handler {
	return map[string]Handler{
		"op": func(ctx *Ctx, args msg.Args) (msg.Args, error) {
			fn := "echo"
			if d.flip {
				fn = "other"
			}
			_, err := ctx.Call("backend", fn, "x")
			if err != nil && !d.flip {
				return nil, err
			}
			return nil, nil
		},
	}
}
func (d *divergentComp) LogPolicies() map[string]LogPolicy {
	return map[string]LogPolicy{"op": {Classify: Durable}}
}

func TestKeysInUseWithMerges(t *testing.T) {
	cfg := DaSConfig()
	cfg.Merges = [][]string{{"a", "b"}}
	comps := []Component{}
	for _, n := range []string{"a", "b", "c"} {
		comps = append(comps, &statelessComp{name: n})
	}
	rt := run(t, cfg, comps, func(c *Ctx) {})
	// scheduler + domains + app + 2 groups (a+b merged, c) = 5
	if got := rt.KeysInUse(); got != 5 {
		t.Fatalf("KeysInUse = %d, want 5", got)
	}
}

func TestRebootWaitsForInFlightCall(t *testing.T) {
	// A proactive reboot must not kill a component mid-request: it waits
	// for the in-flight call to finish.
	slow := &slowComp{}
	run(t, DaSConfig(), []Component{slow}, func(c *Ctx) {
		done := false
		var callErr error
		c.Go("caller", func(cc *Ctx) {
			_, callErr = cc.Call("slow", "work")
			done = true
		})
		// Give the call time to start processing.
		c.Sleep(time.Millisecond)
		if err := c.Reboot("slow"); err != nil {
			t.Fatalf("reboot: %v", err)
		}
		for !done {
			c.Sleep(time.Millisecond)
		}
		if callErr != nil {
			t.Fatalf("in-flight call failed across proactive reboot: %v", callErr)
		}
	})
}

type slowComp struct{}

func (slowComp) Describe() Descriptor {
	return Descriptor{Name: "slow", HeapPages: 4, DomainPages: 4}
}
func (slowComp) Init(*Ctx) error { return nil }
func (slowComp) Exports() map[string]Handler {
	return map[string]Handler{
		"work": func(ctx *Ctx, args msg.Args) (msg.Args, error) {
			ctx.Sleep(20 * time.Millisecond) // long-running request
			return nil, nil
		},
	}
}
