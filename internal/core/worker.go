package core

import (
	"fmt"
	"sort"

	"vampos/internal/mem"
	"vampos/internal/msg"
	"vampos/internal/sched"
	"vampos/internal/trace"
)

// workerThread runs one group's component code: init requests during
// boot, restoration after a reboot, then the serve loop that pulls
// messages from the group mailbox.
type workerThread struct {
	t         *sched.Thread
	g         *group
	initQueue []*component
	initDone  map[*component]bool
	initErr   map[*component]error
	restore   bool
}

// spawnWorker creates (or re-creates, after a reboot) a group's thread.
func (rt *Runtime) spawnWorker(g *group, restore bool) {
	w := &workerThread{
		g:        g,
		initDone: make(map[*component]bool),
		initErr:  make(map[*component]error),
		restore:  restore,
	}
	g.worker = w
	pkru := mem.Allow(g.key).WithRead(keyDomains)
	w.t = rt.sch.Spawn("comp/"+g.name, pkru, func(t *sched.Thread) {
		rt.workerMain(t, g, w)
	})
	// Workers are domain threads: under the sharded-baton engine their
	// timeslices may run inside buffered parallel rounds, on the runner
	// that owns the group's shard ordinal.
	w.t.SetClass(sched.ClassDomain)
	w.t.SetShard(g.shard)
}

func (rt *Runtime) workerMain(t *sched.Thread, g *group, w *workerThread) {
	if w.restore {
		restore := true
		if task := g.micro; task != nil {
			// Rung 1: session-granular restoration. On success the group
			// serves again without a component reboot; on failure the
			// escalation sets up rung 2 and the normal restore runs below
			// on this same worker.
			g.micro = nil
			if err := rt.microrebootGroup(t, g, task); err == nil {
				restore = false
			} else {
				rt.escalateMicro(g, task, err)
			}
		}
		if restore {
			for {
				err := rt.restoreGroup(t, g)
				if err == nil {
					break
				}
				// Taint-aware retry: a replay divergence is a corruption
				// detection, not (yet) a deterministic fault. Stamp the
				// diverging record's seq as the taint watermark and restore
				// again — the rollback lands strictly before it. Each retry
				// tightens the watermark strictly, so the loop terminates.
				if de, ok := err.(*ReplayDivergenceError); ok && rt.stampDivergenceTaint(g, de) {
					continue
				}
				// Restoration itself failed: treat as a deterministic fault
				// and fail-stop the group (§II-B).
				msg := "restore failed: " + err.Error()
				rt.stats.failedRestores.Add(1)
				// The flag flips are polled by blocked callers on other
				// shards, and failing the pending calls wakes them and
				// mutates the conductor-owned pending map; from a round
				// slice all of it must land at commit, in merge order.
				t.Do(func() {
					g.failedTwice = true
					g.rebooting = false
					if tr := rt.tracer; tr != nil {
						tr.EndErr(g.rebootSpan, msg)
						g.rebootSpan, g.quiesceSpan = 0, 0
					}
					rt.failAllPending(g, false)
					rt.notifyFailStop(g)
				})
				return
			}
		}
		// Callers blocked on the reboot poll g.rebooting from their own
		// slices: the clear must commit in merge order, not leak mid-round
		// to whichever threads happen to share this worker's runner.
		t.Do(func() { g.rebooting = false })
	}
	pollMode := rt.cfg.Policy == PolicyRoundRobin
	for !rt.stopped {
		if len(w.initQueue) > 0 {
			c := w.initQueue[0]
			w.initQueue = w.initQueue[1:]
			ctx := &Ctx{rt: rt, comp: c, th: t}
			err := c.comp.Init(ctx)
			w.initDone[c] = true
			w.initErr[c] = err
			if rt.bootThread != nil {
				boot := rt.bootThread
				t.Do(func() { boot.Wake() })
			}
			continue
		}
		m, ok := g.mailbox.Pull()
		if !ok {
			if pollMode {
				t.Yield()
			} else {
				t.Block("mailbox empty")
			}
			continue
		}
		t.Charge(rt.costs.MessagePull)
		if !rt.execMessage(t, g, m) {
			return // component crashed; the message thread takes over
		}
		// The call completed and its reply was submitted: the group is
		// quiescent. Verify arena seals first — tampering detected now
		// must not be baked into a fresh checkpoint image at this same
		// quiescent point.
		if rt.maybeDefense(t, g) {
			return // tamper detected; the message thread takes over
		}
		rt.maybeCheckpoint(g)
	}
}

// execMessage runs one inbound call and submits its reply. It returns
// false when the handler panicked and the worker thread must die.
func (rt *Runtime) execMessage(t *sched.Thread, g *group, m *msg.Message) bool {
	c := g.member(m.To)
	if c == nil {
		// Message addressed to a component not in this group: domain
		// bookkeeping is broken, which only a core bug can cause.
		panic(fmt.Sprintf("core: group %s received message for %q", g.name, m.To))
	}
	pc := rt.pending[m.Seq]
	h, ok := c.exports[m.Fn]
	if !ok {
		rt.submitFrom(t, mqItem{kind: mqReply, pc: pc, errStr: errnoString(&UnknownFunctionError{Component: m.To, Fn: m.Fn})})
		return true
	}
	g.currentSeq = m.Seq
	g.busySinceV = t.Elapsed()
	if pc != nil && pc.rec != nil {
		g.curRec = pc.rec
		g.curLog = c.domain.Log()
	}
	ctx := &Ctx{rt: rt, comp: c, th: t}
	var parent trace.SpanID
	if pc != nil {
		parent = pc.span
	}
	if tr := rt.tracer; tr != nil {
		tr.Instant(parent, trace.KindPull, c.desc.Name, m.Fn, "from "+m.From)
		ctx.span = tr.Begin(parent, trace.KindExec, c.desc.Name, "", m.Fn)
	}
	var faultsBefore uint64
	watchFaults := rt.cfg.Defense.Enabled && rt.cfg.Defense.RebootOnFault
	if watchFaults {
		// Per-accessor counting: under parallel rounds the global fault
		// counter can move on another shard mid-handler, which would
		// attribute a neighbour's PKRU misuse to this component.
		faultsBefore = t.Accessor().Faults()
	}
	rets, err, pv, panicked := rt.invokeChecked(h, ctx, c.desc.Name, m.Fn, m.Args)
	g.currentSeq = 0
	g.curRec = nil
	g.curLog = nil
	if panicked {
		reason := fmt.Sprint(pv)
		if tr := rt.tracer; tr != nil {
			// The crash instant hangs off the exec span; the span itself
			// stays open — the crash truncated it, and the snapshot marks
			// it unfinished.
			tr.Instant(ctx.span, trace.KindCrash, c.desc.Name, m.Fn, reason)
		}
		rt.submitFrom(t, mqItem{kind: mqFailure, grp: g, seq: m.Seq, reason: reason})
		return false
	}
	if tr := rt.tracer; tr != nil {
		tr.EndErr(ctx.span, errnoString(err))
	}
	if c.tracker != nil {
		c.tracker.NoteCall()
	}
	c.lastExecSeq = m.Seq
	c.calls.Add(1)
	if err != nil {
		c.errs.Add(1)
	}
	c.busyV.Add(int64(t.Elapsed() - g.busySinceV))
	rt.submitFrom(t, mqItem{kind: mqReply, pc: pc, rets: rets, errStr: errnoString(err)})
	if watchFaults && t.Accessor().Faults() > faultsBefore {
		// The handler raised protection faults: a PKRU-misuse attempt,
		// confined by interposition but evidence of compromise. The reply
		// is already queued (callers observe the EFAULT, not the reboot);
		// the message thread reboots the offender into a re-randomized
		// incarnation after delivering it.
		rt.submitFrom(t, mqItem{kind: mqBreach, grp: g, comp: c})
		return false
	}
	return true
}

// invokeChecked fires any armed fault for the invocation, then invokes.
// An errno fault short-circuits the handler: the call returns the
// injected error without executing.
func (rt *Runtime) invokeChecked(h Handler, ctx *Ctx, component, fn string, args msg.Args) (rets msg.Args, err error, pv any, panicked bool) {
	wrapped := func(c *Ctx, a msg.Args) (msg.Args, error) {
		if ferr := rt.checkFault(c, component, fn); ferr != nil {
			return nil, ferr
		}
		return h(c, a)
	}
	return rt.invoke(wrapped, ctx, args)
}

// invoke runs a handler, converting panics — crashes, nil dereferences,
// protection faults turned into panics — into a captured failure, while
// letting the scheduler's kill-unwind pass through.
func (rt *Runtime) invoke(h Handler, ctx *Ctx, args msg.Args) (rets msg.Args, err error, pv any, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			if sched.IsKill(r) {
				panic(r)
			}
			pv = r
			panicked = true
		}
	}()
	rets, err = h(ctx, args)
	return rets, err, nil, false
}

// pendingInOrder returns the outstanding calls in ascending seq order.
// rt.pending is a map: resolving calls in its iteration order would
// wake the blocked callers in a different order every process run,
// and the wake order feeds the scheduler's run queue — which decides
// what the log records next.
func (rt *Runtime) pendingInOrder() []*pendingCall {
	seqs := make([]uint64, 0, len(rt.pending))
	for seq := range rt.pending {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	out := make([]*pendingCall, len(seqs))
	for i, seq := range seqs {
		out[i] = rt.pending[seq]
	}
	return out
}

// failAllPending resolves every outstanding call addressed to the group.
// With retryable set the callers re-submit after the reboot; otherwise
// they observe a permanent failure.
func (rt *Runtime) failAllPending(g *group, retryable bool) {
	for _, pc := range rt.pendingInOrder() {
		if pc.done || pc.to.group != g {
			continue
		}
		if retryable {
			pc.rebooted = true
			rt.finishCall(pc, nil, "")
		} else {
			rt.finishCall(pc, nil, errnoString(ErrComponentFailed))
		}
	}
}
