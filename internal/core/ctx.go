package core

import (
	"time"

	"vampos/internal/mem"
	"vampos/internal/msg"
	"vampos/internal/sched"
	"vampos/internal/trace"
)

// Ctx is the execution context handed to component handlers and
// application threads. It carries the identity of the executing component
// (nil for application code), the simulated thread, and — during
// encapsulated restoration — the replay state that feeds logged return
// values back instead of calling other components.
type Ctx struct {
	rt      *Runtime
	comp    *component
	th      *sched.Thread
	replay  *replayState
	appName string
	// span is the context's current trace span: calls issued through
	// this context become its children. Zero when tracing is off or the
	// context is outside any traced operation.
	span trace.SpanID
}

// replayState drives one record's replay during encapsulated restoration.
type replayState struct {
	grp *group
	rec *msg.RecordView
	idx int
	// diverged records a log mismatch even if the component swallows the
	// error: the restore must not be trusted after one.
	diverged *ReplayDivergenceError
}

// Runtime returns the owning runtime.
func (c *Ctx) Runtime() *Runtime { return c.rt }

// Mem returns the protection-checked memory accessor of the current
// thread. All arena data accesses must go through it.
func (c *Ctx) Mem() *mem.Accessor { return c.th.Accessor() }

// Heap returns the executing component's arena allocator, or the
// application heap for application threads (nil until EnsureAppHeap).
func (c *Ctx) Heap() *mem.Buddy {
	if c.comp != nil {
		return c.comp.heap
	}
	return c.rt.appHeap
}

// Now returns the current virtual time as this context's thread sees it.
// Inside a buffered round slice that is the shard-local view (the global
// watermark plus the thread's own charges); elsewhere it is the global
// clock.
func (c *Ctx) Now() time.Time { return c.rt.clk.At(c.th.Elapsed()) }

// Elapsed returns virtual time since boot (shard-local during rounds).
func (c *Ctx) Elapsed() time.Duration { return c.th.Elapsed() }

// Sleep suspends the thread for d of virtual time.
func (c *Ctx) Sleep(d time.Duration) { c.th.Sleep(d) }

// Yield gives up the CPU until the scheduler comes back around.
func (c *Ctx) Yield() { c.th.Yield() }

// InReplay reports whether the context is executing an encapsulated
// restoration replay.
func (c *Ctx) InReplay() bool { return c.replay != nil }

// ReplayRets returns the results the replayed call produced originally.
// Handlers that allocate externally visible resource numbers (fds, fids)
// consult it so the replayed allocation reproduces the original number
// exactly, regardless of how the log was shrunk since.
func (c *Ctx) ReplayRets() (msg.Args, bool) {
	if c.replay == nil {
		return nil, false
	}
	return c.replay.rec.Rets, true
}

// callerName identifies this context in messages and logs.
func (c *Ctx) callerName() string {
	if c.comp != nil {
		return c.comp.desc.Name
	}
	if c.appName != "" {
		return c.appName
	}
	return "app"
}

// Go spawns an additional application thread running fn. It is how the
// workloads create their 25 Nginx workers or per-connection handlers.
// The thread inherits the spawner's shard ordinal, so threads that share
// state stay on one shard baton and serialize against each other.
func (c *Ctx) Go(name string, fn func(*Ctx)) *sched.Thread {
	return c.goShard(name, c.th.ShardOrdinal(), fn)
}

// GoShard spawns an application thread pinned to an explicit shard
// ordinal. Workload drivers whose threads are mutually independent use
// distinct ordinals so the round engine can run them on different cores;
// the ordinal is folded modulo the configured shard count, so any
// non-negative value is valid at any -shards setting.
func (c *Ctx) GoShard(name string, shard int, fn func(*Ctx)) *sched.Thread {
	return c.goShard(name, shard, fn)
}

func (c *Ctx) goShard(name string, shard int, fn func(*Ctx)) *sched.Thread {
	pkru := mem.PKRU(mem.AllowAll)
	if c.rt.cfg.MessagePassing {
		pkru = mem.Allow(keyApp)
	}
	t := c.rt.sch.SpawnFrom(c.th, name, pkru, func(t *sched.Thread) {
		fn(&Ctx{rt: c.rt, th: t, appName: name})
	})
	if c.rt.cfg.MessagePassing {
		// Application threads are app-class: the shard engine pens them
		// until conductor quiescence so independent application domains'
		// handler work lands in one wide parallel round. In vanilla mode
		// calls execute on the caller's thread with direct state sharing,
		// so threads stay in the system class and the legacy baton
		// serializes them.
		t.SetClass(sched.ClassApp)
		t.SetShard(shard)
	}
	return t
}

// SaveRuntimeState records component runtime data that log replay cannot
// regenerate (the paper's LWIP TCP sequence/ACK numbers). Each call
// replaces the previous state; the reboot manager hands the latest value
// to RuntimeKeeper.InstallRuntimeState after replay. Calls made during
// replay are ignored so restoration cannot clobber the very state it is
// restoring from.
func (c *Ctx) SaveRuntimeState(state msg.Args) {
	if c.comp == nil || c.replay != nil {
		return
	}
	c.comp.runtimeState = state
}

// Thread exposes the underlying simulated thread (for host integration).
func (c *Ctx) Thread() *sched.Thread { return c.th }

// Tracer returns the runtime's flight recorder (nil when tracing is
// off). All recorder methods are safe on the nil result.
func (c *Ctx) Tracer() *trace.Recorder { return c.rt.tracer }

// BeginSyscall opens a trace span for one application system call — the
// causal root that every component hop, crash and recovery the call
// triggers will hang from. It returns the new span and the context's
// previous one; hand both to EndSyscall. Free (two zero returns) when
// tracing is off.
func (c *Ctx) BeginSyscall(name string) (sp, prev trace.SpanID) {
	tr := c.rt.tracer
	if tr == nil {
		return 0, 0
	}
	prev = c.span
	sp = tr.Begin(prev, trace.KindSyscall, c.callerName(), "", name)
	c.span = sp
	return sp, prev
}

// EndSyscall closes a span opened by BeginSyscall, recording err as its
// outcome, and restores the context's previous span.
func (c *Ctx) EndSyscall(sp, prev trace.SpanID, err error) {
	tr := c.rt.tracer
	if tr == nil || sp == 0 {
		return
	}
	tr.EndErr(sp, errnoString(err))
	c.span = prev
}

// TraceMark records a free-form instant under the context's current
// span. Experiments use it to label workload milestones.
func (c *Ctx) TraceMark(name, detail string) {
	if tr := c.rt.tracer; tr != nil {
		tr.Instant(c.span, trace.KindMark, c.callerName(), name, detail)
	}
}
