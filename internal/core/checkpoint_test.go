package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"vampos/internal/ckpt"
	"vampos/internal/msg"
	"vampos/internal/trace"
)

// TestCadenceCheckpointBoundsReplay: with a call-count cadence, the
// worker re-checkpoints at quiescent points, truncates the covered log
// prefix, and recovery restores the latest image plus only the short
// tail — while every key survives.
func TestCadenceCheckpointBoundsReplay(t *testing.T) {
	kv := &kvComp{name: "kv", checkpointed: true, initSeed: "seed"}
	cfg := DaSConfig()
	cfg.Ckpt = ckpt.Policy{EveryCalls: 4}
	rt := run(t, cfg, []Component{kv}, func(c *Ctx) {
		for i := 0; i < 10; i++ {
			mustCall(t, c, "kv", "put", "k"+strconv.Itoa(i), strconv.Itoa(i))
		}
		if err := c.Reboot("kv"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			rets := mustCall(t, c, "kv", "get", "k"+strconv.Itoa(i))
			if v, _ := rets.Str(0); v != strconv.Itoa(i) {
				t.Errorf("k%d = %q after checkpointed recovery", i, v)
			}
		}
	})
	cs, ok := rt.CheckpointStats("kv")
	if !ok {
		t.Fatal("kv not checkpoint-eligible")
	}
	if cs.CheckpointCount < 2 {
		t.Fatalf("CheckpointCount = %d over 10 calls at cadence 4, want >= 2", cs.CheckpointCount)
	}
	if cs.TruncatedEntries == 0 {
		t.Fatal("cadence checkpoints truncated nothing")
	}
	rec := rt.Reboots()[0]
	if rec.ReplayedEntries > 4 {
		t.Fatalf("replayed %d entries, want <= cadence 4", rec.ReplayedEntries)
	}
	if kv.initCount != 1 {
		t.Fatalf("initCount = %d, want 1 (image restore, no re-init)", kv.initCount)
	}
	if rt.Stats().Checkpoints != cs.CheckpointCount {
		t.Fatalf("runtime checkpoints %d != component's %d", rt.Stats().Checkpoints, cs.CheckpointCount)
	}
}

// TestPerComponentPolicyOverride: CkptPerComponent overrides the global
// cadence for the named component only.
func TestPerComponentPolicyOverride(t *testing.T) {
	a := &kvComp{name: "kva", checkpointed: true}
	b := &kvComp{name: "kvb", checkpointed: true}
	cfg := DaSConfig()
	cfg.CkptPerComponent = map[string]ckpt.Policy{"kva": {EveryCalls: 2}}
	rt := run(t, cfg, []Component{a, b}, func(c *Ctx) {
		for i := 0; i < 6; i++ {
			k := strconv.Itoa(i)
			mustCall(t, c, "kva", "put", k, k)
			mustCall(t, c, "kvb", "put", k, k)
		}
	})
	csa, _ := rt.CheckpointStats("kva")
	csb, _ := rt.CheckpointStats("kvb")
	if csa.CheckpointCount == 0 {
		t.Fatal("per-component cadence never checkpointed kva")
	}
	if csb.CheckpointCount != 0 {
		t.Fatalf("kvb checkpointed %d times with no policy", csb.CheckpointCount)
	}
}

// TestLogThresholdTrigger: the log-length trigger checkpoints once the
// retained log outgrows the threshold, independent of call counts.
func TestLogThresholdTrigger(t *testing.T) {
	kv := &kvComp{name: "kv", checkpointed: true}
	cfg := DaSConfig()
	cfg.Ckpt = ckpt.Policy{LogThreshold: 5}
	rt := run(t, cfg, []Component{kv}, func(c *Ctx) {
		for i := 0; i < 12; i++ {
			k := strconv.Itoa(i)
			mustCall(t, c, "kv", "put", k, k)
		}
	})
	cs, _ := rt.CheckpointStats("kv")
	if cs.CheckpointCount == 0 {
		t.Fatal("log-threshold trigger never fired")
	}
	if got := rt.LogLen("kv"); got > 6 {
		t.Fatalf("retained log = %d entries, threshold 5 never enforced", got)
	}
}

// TestManualCheckpoint: Ctx.Checkpoint forces an image regardless of
// policy; the covered prefix is truncated and later recovery replays
// only calls made after it.
func TestManualCheckpoint(t *testing.T) {
	kv := &kvComp{name: "kv", checkpointed: true}
	rt := run(t, DaSConfig(), []Component{kv}, func(c *Ctx) {
		mustCall(t, c, "kv", "put", "a", "1")
		mustCall(t, c, "kv", "put", "b", "2")
		if err := c.Checkpoint("kv"); err != nil {
			t.Fatal(err)
		}
		if got := c.rt.LogLen("kv"); got != 0 {
			t.Fatalf("log = %d entries after manual checkpoint, want 0", got)
		}
		mustCall(t, c, "kv", "put", "c", "3")
		if err := c.Reboot("kv"); err != nil {
			t.Fatal(err)
		}
		for _, pair := range [][2]string{{"a", "1"}, {"b", "2"}, {"c", "3"}} {
			rets := mustCall(t, c, "kv", "get", pair[0])
			if v, _ := rets.Str(0); v != pair[1] {
				t.Errorf("%s = %q after recovery, want %s", pair[0], v, pair[1])
			}
		}
	})
	cs, _ := rt.CheckpointStats("kv")
	if cs.CheckpointCount != 1 {
		t.Fatalf("CheckpointCount = %d, want 1", cs.CheckpointCount)
	}
	if rec := rt.Reboots()[0]; rec.ReplayedEntries != 1 {
		t.Fatalf("replayed %d entries, want 1 (only the post-checkpoint put)", rec.ReplayedEntries)
	}
}

// TestManualCheckpointValidation: ineligible targets are rejected.
func TestManualCheckpointValidation(t *testing.T) {
	kv := &kvComp{name: "kv", checkpointed: true}
	plain := &statelessComp{name: "plain"}
	run(t, DaSConfig(), []Component{kv, plain}, func(c *Ctx) {
		if err := c.Checkpoint("nosuch"); err == nil {
			t.Error("checkpoint of unknown component succeeded")
		}
		if err := c.Checkpoint("plain"); err == nil {
			t.Error("checkpoint of non-eligible component succeeded")
		}
	})
}

// nondetComp returns a host-side counter its SaveState does not capture:
// replaying its calls after a restore produces different results than
// the log recorded — exactly the divergence ReplayRetCheck exists to
// surface.
type nondetComp struct {
	name  string
	n     int
	crash bool
}

func (d *nondetComp) Describe() Descriptor {
	return Descriptor{Name: d.name, Stateful: true, Checkpoint: true, HeapPages: 8, DomainPages: 8}
}

func (d *nondetComp) Init(*Ctx) error { return nil }

func (d *nondetComp) Exports() map[string]Handler {
	return map[string]Handler{
		"bump": func(ctx *Ctx, args msg.Args) (msg.Args, error) {
			if d.crash {
				d.crash = false
				panic("injected crash in bump")
			}
			d.n++
			return msg.Args{d.n}, nil
		},
	}
}

func (d *nondetComp) LogPolicies() map[string]LogPolicy {
	return map[string]LogPolicy{
		"bump": {Classify: func(args, rets msg.Args, callErr error) (msg.SessionID, msg.Class) {
			return "", msg.ClassDurable
		}},
	}
}

// SaveState deliberately omits n.
func (d *nondetComp) SaveState() ([]byte, error)  { return []byte("x"), nil }
func (d *nondetComp) RestoreState(p []byte) error { return nil }

// TestReplayRetCheckSurfacesDivergence: with the opt-in check enabled, a
// replayed call whose results differ from the log fails the restoration
// with a ReplayDivergenceError and leaves a detection instant in the
// trace; with the check off, the same divergence passes silently.
func TestReplayRetCheckSurfacesDivergence(t *testing.T) {
	for _, check := range []bool{false, true} {
		t.Run(fmt.Sprintf("check=%v", check), func(t *testing.T) {
			d := &nondetComp{name: "nd"}
			cfg := DaSConfig()
			cfg.ReplayRetCheck = check
			cfg.MaxVirtualTime = time.Hour
			rt := NewRuntime(cfg)
			rec := rt.NewTracer("retcheck-test")
			if err := rt.Register(d); err != nil {
				t.Fatal(err)
			}
			err := rt.Run(func(c *Ctx) {
				mustCall(t, c, "nd", "bump") // logged ret: 1
				mustCall(t, c, "nd", "bump") // logged ret: 2
				d.crash = true
				// The crash reboots nd; replay re-runs both bumps against the
				// live n=2, returning 3 and 4 — diverging from the log.
				_, _ = c.Call("nd", "bump")
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			var diverged bool
			for _, e := range rec.Snapshot() {
				if e.Kind == trace.KindDetect && e.Name == "replay-divergence" {
					diverged = true
				}
			}
			failed := rt.Stats().FailedRestores
			if check {
				if failed == 0 {
					t.Fatal("divergent replay restored successfully despite ReplayRetCheck")
				}
				if !diverged {
					t.Fatal("no replay-divergence detection instant in the trace")
				}
			} else {
				if failed != 0 {
					t.Fatalf("FailedRestores = %d with the check off", failed)
				}
				if diverged {
					t.Fatal("divergence reported with the check off")
				}
			}
		})
	}
}

// TestReplayDivergenceErrorShape: the error names the component, the
// function and the mismatch so forensics can localise the
// nondeterminism.
func TestReplayDivergenceErrorShape(t *testing.T) {
	de := &ReplayDivergenceError{Component: "nd", WantFn: "bump", GotFn: "bump", RetMismatch: true, Detail: "logged rets [1], replay produced [3]"}
	var target *ReplayDivergenceError
	if !errors.As(fmt.Errorf("wrap: %w", de), &target) {
		t.Fatal("ReplayDivergenceError does not unwrap")
	}
	text := de.Error()
	for _, want := range []string{"nd", "bump", "[1]", "[3]"} {
		if !strings.Contains(text, want) {
			t.Errorf("error %q missing %q", text, want)
		}
	}
}
