package core

import (
	"fmt"
	"time"

	"vampos/internal/ckpt"
	"vampos/internal/msg"
	"vampos/internal/sched"
	"vampos/internal/trace"
)

// This file is the runtime half of incremental quiescent-point
// checkpointing (internal/ckpt holds the policy half). The paper
// checkpoints each component once, right after Init (§V-E), so recovery
// replays every retained call — reboot latency grows with time since
// boot. Here the worker loop re-checkpoints a component whenever its
// cadence policy says so, at a point where the component is provably
// quiescent, and then truncates the log prefix the fresh image covers,
// bounding replay to the tail.

// installTrackers attaches a cadence tracker to every checkpoint-eligible
// component (Stateful with Checkpoint set — the same components that get
// a post-init image). Runs at Boot, message-passing mode only: vanilla
// mode has no logs, no workers and no reboots, so nothing to bound.
func (rt *Runtime) installTrackers() {
	if !rt.cfg.MessagePassing {
		return
	}
	for _, c := range rt.order {
		if c.desc.Stateful && c.desc.Checkpoint {
			// A disabled policy still gets a tracker: manual Ctx.Checkpoint
			// calls are accounted through it.
			c.tracker = ckpt.NewTracker(rt.cfg.CkptPolicyFor(c.desc.Name))
		}
	}
}

// maybeCheckpoint re-checkpoints any group member whose cadence is due.
// The worker calls it between inbound calls: the previous call fully
// completed (currentSeq is zero), no handler frame is live, and queued
// messages wait in the mailbox until the worker resumes — the mailbox is
// effectively paused under the cooperative scheduler baton, which is
// exactly the quiescence a consistent image needs. The watchdog never
// flags a checkpointing group for the same reason: it only inspects
// groups with a call in flight. Merged groups compose naturally: group
// quiescence is member quiescence, so any due member may be imaged.
func (rt *Runtime) maybeCheckpoint(g *group) {
	if g.rebooting || g.failedTwice {
		return
	}
	for _, c := range g.members {
		if c.tracker == nil || c.checkpoint == nil {
			continue
		}
		if rt.agingHot(c.desc.Name) {
			// The adaptive-aging monitor has this component latched over
			// threshold: a rejuvenation is imminent, and imaging the arena
			// now would bake the accumulated leak or fragmentation into
			// the recovery image — the restore would resurrect exactly the
			// state the rejuvenation exists to shed, and once the log is
			// truncated against an aged image the pre-aging state is
			// unrecoverable. Skip the cadence until the latch releases;
			// explicit Ctx.Checkpoint stays ungated because Rejuvenate's
			// post-reboot capture runs while the latch is still set.
			continue
		}
		if !c.tracker.Due(c.domain.Log().Len()) {
			continue
		}
		if err := rt.checkpointComponent(g.worker.t, c); err != nil {
			// A failed capture leaves the previous image and the untruncated
			// log in place — recovery is still correct, just not cheaper.
			rt.stats.checkpointErrors.Add(1)
		}
	}
}

// checkpointComponent captures one incremental checkpoint: a dirty-page
// delta layered over the previous image, fresh control state, then
// truncation of the log prefix the new image covers. The caller must
// guarantee quiescence. On error the component's previous checkpoint and
// log are left untouched.
// th is the simulated thread doing the capture (the group worker, or the
// caller of Ctx.Checkpoint); the capture cost is charged to it so the
// charge lands in the right shard's journal during buffered rounds.
func (rt *Runtime) checkpointComponent(th *sched.Thread, c *component) error {
	tr := rt.tracer
	var sp trace.SpanID
	if tr != nil {
		sp = tr.Begin(0, trace.KindCkpt, c.desc.Name, "", trace.PhaseCheckpoint)
	}
	snap, dirtyPages, err := rt.memry.SnapshotDelta(c.checkpoint.memSnap)
	if err != nil {
		if tr != nil {
			tr.EndErr(sp, err.Error())
		}
		return fmt.Errorf("core: checkpoint %q: %w", c.desc.Name, err)
	}
	// Under defense, the records truncation is about to drop must stay
	// replayable against older retained images: a taint-aware rollback
	// replays the un-tainted slice between an old image and the
	// watermark, and part of that slice lives only in the archive once
	// the live log is truncated. Decode before anything is installed so
	// a decode failure leaves the component untouched.
	var truncViews []msg.RecordView
	if c.images != nil {
		truncViews, err = c.domain.Log().Entries()
		if err != nil {
			if tr != nil {
				tr.EndErr(sp, err.Error())
			}
			return fmt.Errorf("core: checkpoint %q: %w", c.desc.Name, err)
		}
	}
	cp := &checkpoint{memSnap: snap, heap: c.heap.Clone(), takenAt: rt.clk.Now()}
	if ss, ok := c.comp.(StateSaver); ok {
		blob, serr := ss.SaveState()
		if serr != nil {
			if tr != nil {
				tr.EndErr(sp, serr.Error())
			}
			return fmt.Errorf("core: checkpoint %q: %w", c.desc.Name, serr)
		}
		cp.control = blob
	}
	// The image now reflects every completed call, so the prefix up to
	// the newest completed record is replayable from the image alone.
	// Install the image first, then truncate: both run under the baton,
	// so no observer can see the intermediate state anyway, but the order
	// keeps a (hypothetical) truncation failure from orphaning entries a
	// not-yet-installed image would have covered.
	c.checkpoint = cp
	lg := c.domain.Log()
	// The image covers every call executed so far, which at a worker
	// quiescent point is one more than the log shows completed: the
	// just-finished call's record stays open until the message thread
	// processes its reply, yet its effects are already in the capture.
	// Label (and truncate) with the executed high-water mark so replay
	// never re-applies a call the image contains.
	truncSeq := lg.MaxCompletedSeq()
	if c.lastExecSeq > truncSeq {
		truncSeq = c.lastExecSeq
	}
	dropped, folded := lg.TruncateBefore(truncSeq)
	if c.images != nil {
		// The image's EpochSeq is the truncation seq — exactly the calls
		// it covers — not lg.EpochSeq(), which after a rollback can stay
		// inflated above what this capture actually folded.
		c.images.Add(ckpt.ImageMeta{Epoch: lg.Epoch(), EpochSeq: truncSeq}, cp)
		c.archiveTruncated(truncViews, truncSeq)
	}
	// Charge what the mechanism actually moved: dirty pages copied into
	// the image (the whole point of the delta) plus the log rewrite.
	rt.chargeOn(th, time.Duration(dirtyPages)*rt.costs.SnapshotPerPage)
	rt.chargeOn(th, time.Duration(dropped+folded)*rt.costs.LogAppend)
	c.tracker.NoteCheckpoint(dirtyPages, dropped, folded)
	rt.stats.checkpoints.Add(1)
	if tr != nil {
		tr.EndErr(sp, fmt.Sprintf("dirty=%d truncated=%d folded=%d", dirtyPages, dropped, folded))
	}
	return nil
}

// Checkpoint forces an immediate quiescent-point checkpoint of the named
// component from an application or controller thread, regardless of its
// cadence policy — the checkpointing analogue of Ctx.Reboot. It waits
// for the component's group to go idle, captures the image, and returns.
func (c *Ctx) Checkpoint(name string) error {
	rt := c.rt
	tc, ok := rt.comps[name]
	if !ok {
		return &UnknownComponentError{Name: name}
	}
	if !rt.cfg.MessagePassing {
		return fmt.Errorf("core: checkpoint of %q requires message passing", name)
	}
	if !tc.desc.Stateful || !tc.desc.Checkpoint || tc.checkpoint == nil {
		return fmt.Errorf("core: component %q is not checkpoint-eligible (needs Stateful with Checkpoint)", name)
	}
	g := tc.group
	if g.failedTwice {
		return fmt.Errorf("%w: %s", ErrComponentFailed, name)
	}
	if c.comp != nil && c.comp.group == g {
		return fmt.Errorf("core: component %q cannot checkpoint itself", name)
	}
	// Wait until the group is between requests; cooperative scheduling
	// makes the check race-free (nothing runs between check and capture).
	for g.rebooting || g.currentSeq != 0 {
		c.th.Sleep(10 * time.Microsecond)
	}
	if g.failedTwice {
		return fmt.Errorf("%w: %s", ErrComponentFailed, name)
	}
	return rt.checkpointComponent(c.th, tc)
}

// CheckpointStats returns the named component's checkpoint accounting.
// The second result is false when the component is unknown or not
// checkpoint-eligible.
func (rt *Runtime) CheckpointStats(name string) (ckpt.Stats, bool) {
	c, ok := rt.comps[name]
	if !ok || c.tracker == nil {
		return ckpt.Stats{}, false
	}
	return c.tracker.Stats(), true
}
