package core

import (
	"fmt"

	"vampos/internal/ckpt"
	"vampos/internal/defense"
	"vampos/internal/msg"
	"vampos/internal/sched"
	"vampos/internal/trace"
)

// This file is the runtime half of the active-defense pipeline
// (internal/defense holds the policy half): detect → watermark →
// taint-aware rollback → re-randomize. Detection has two sources — the
// arena seal below (host-boundary tampering) and the ReplayRetCheck
// divergence detector (restoreGroup) — both of which stamp a taint
// watermark that restoreGroup's rollback honours.

// installDefense arms the per-component defense state at Boot: every
// checkpoint-eligible component gets an image-history ring. The post-init
// image is seeded into it by takeCheckpoint.
func (rt *Runtime) installDefense() {
	p := rt.cfg.Defense
	if !p.Enabled || !rt.cfg.MessagePassing {
		return
	}
	for _, c := range rt.order {
		if c.desc.Stateful && c.desc.Checkpoint {
			c.images = ckpt.NewHistory(p.HistoryDepth)
		}
	}
}

// maybeDefense verifies due arena seals at a group quiescent point (the
// worker calls it between inbound calls). On a broken seal it submits a
// tamper item to the message thread and returns true: the worker must
// die, exactly like a crash, and the message thread drives the
// taint-aware reboot.
func (rt *Runtime) maybeDefense(t *sched.Thread, g *group) bool {
	p := rt.cfg.Defense
	if !p.Enabled || g.rebooting || g.failedTwice {
		return false
	}
	for _, c := range g.members {
		if c.images == nil {
			continue
		}
		if c.seal == nil {
			rt.captureSeal(c)
			continue
		}
		c.sealCalls++
		if c.sealCalls < p.SealEveryCalls {
			continue
		}
		c.sealCalls = 0
		cur, err := rt.memry.HostVersions(c.heapBase, c.heapPages)
		if err != nil {
			continue
		}
		if c.seal.Verify(cur) {
			// Clean: every call up to this quiescent point ran against an
			// untampered arena. Advance the seal so a later break taints
			// only the window after this verification.
			rt.captureSeal(c)
			continue
		}
		w := c.seal.Watermark()
		rt.submitFrom(t, mqItem{kind: mqTamper, grp: g, comp: c, seq: w, reason: "seal"})
		return true
	}
	return false
}

// captureSeal stamps the component's arena at a quiescent point. Seq is
// the highest inbound seq the arena already reflects — executed calls
// top out at lastExecSeq, retained records at MaxCompletedSeq, truncated
// ones at EpochSeq — so a later break taints exactly the calls after
// this point.
func (rt *Runtime) captureSeal(c *component) {
	stamps, err := rt.memry.HostVersions(c.heapBase, c.heapPages)
	if err != nil {
		return
	}
	lg := c.domain.Log()
	seq := c.lastExecSeq
	if mc := lg.MaxCompletedSeq(); mc > seq {
		seq = mc
	}
	if es := lg.EpochSeq(); es > seq {
		seq = es
	}
	c.seal = &defense.Seal{Stamps: stamps, Seq: seq}
	c.sealCalls = 0
}

// handleTamper runs on the message thread when a seal broke: stamp the
// taint watermark, count the detection, and begin a reboot whose restore
// will roll back past the watermark. Mirrors handleFailure's fail-stop
// discipline for tampering detected while already recovering.
func (rt *Runtime) handleTamper(g *group, victim *component, watermark uint64, detector string) {
	rt.stats.tampers.Add(1)
	victim.failures.Add(1)
	if tr := rt.tracer; tr != nil {
		tr.Instant(0, trace.KindDetect, victim.desc.Name, "tamper",
			fmt.Sprintf("detector=%s watermark=%d", detector, watermark))
	}
	if rt.onComponentFailure != nil {
		rt.onComponentFailure(victim.desc.Name, "tamper")
	}
	rt.stampTaint(victim, defense.Taint{Watermark: watermark, Detector: detector})
	if g.failedTwice || g.rebooting {
		g.failedTwice = true
		g.rebooting = false
		if tr := rt.tracer; tr != nil {
			tr.EndErr(g.rebootSpan, "fail-stop: tamper during recovery")
			g.rebootSpan, g.quiesceSpan = 0, 0
		}
		rt.failAllPending(g, false)
		rt.notifyFailStop(g)
		return
	}
	rt.beginReboot(g, "tamper: "+detector, false, 0)
}

// handleBreach runs on the message thread after a handler raised
// protection faults with RebootOnFault set: the PKRU misuse was confined
// by interposition (the access never landed), but the offender is now
// suspect and gets a fresh — re-randomized — incarnation. The reply was
// already delivered, so callers observe the EFAULT, not the reboot.
func (rt *Runtime) handleBreach(g *group, offender *component) {
	if g.failedTwice || g.rebooting {
		return
	}
	rt.stats.breaches.Add(1)
	offender.failures.Add(1)
	if tr := rt.tracer; tr != nil {
		tr.Instant(0, trace.KindDetect, offender.desc.Name, "pkru-misuse",
			"protection fault raised by handler; rebooting offender")
	}
	if rt.onComponentFailure != nil {
		rt.onComponentFailure(offender.desc.Name, "pkru-misuse")
	}
	rt.beginReboot(g, "pkru-misuse", false, 0)
}

// stampTaint merges a detection into the component's pending taint,
// keeping the earliest watermark. Returns whether anything tightened.
func (rt *Runtime) stampTaint(c *component, t defense.Taint) bool {
	if c.taint == nil {
		c.taint = &defense.Taint{}
	}
	return c.taint.Tighten(t)
}

// stampDivergenceTaint turns a replay divergence into a taint watermark
// on the diverged member, enabling a rollback retry. It returns false —
// no retry — when defense is off, the component has no image history,
// the divergence carries no seq, or the watermark does not strictly
// tighten the existing taint (which guarantees retry termination: each
// retry rolls back strictly further).
func (rt *Runtime) stampDivergenceTaint(g *group, de *ReplayDivergenceError) bool {
	if !rt.cfg.Defense.Enabled || de.Seq == 0 {
		return false
	}
	c := g.member(de.Component)
	if c == nil || c.images == nil {
		return false
	}
	if !rt.stampTaint(c, defense.Taint{Watermark: de.Seq, Detector: "divergence"}) {
		return false
	}
	rt.stats.tampers.Add(1)
	if tr := rt.tracer; tr != nil {
		tr.Instant(0, trace.KindDetect, c.desc.Name, "tamper",
			fmt.Sprintf("detector=divergence watermark=%d", de.Seq))
	}
	return true
}

// archiveTruncated retains decoded views of the records a truncation is
// about to drop, then trims the archive to what retained images can
// still need: records at or below the oldest restorable image's epoch
// seq can never be part of any replay tail again.
func (c *component) archiveTruncated(views []msg.RecordView, truncSeq uint64) {
	for _, v := range views {
		if v.Seq <= truncSeq {
			c.archive = append(c.archive, v)
		}
	}
	if min, ok := c.images.OldestEpochSeq(); ok {
		kept := c.archive[:0]
		for _, v := range c.archive {
			if v.Seq > min {
				kept = append(kept, v)
			}
		}
		for i := len(kept); i < len(c.archive); i++ {
			c.archive[i] = msg.RecordView{}
		}
		c.archive = kept
	}
}

// DefenseEnabled reports whether the active-defense pipeline is armed.
// Boundary components consult it to pick their reaction to a malformed
// host frame: under defense a corrupted frame is treated as an attack
// (crash, reboot, retry transparently); without it, a typed errno.
func (rt *Runtime) DefenseEnabled() bool { return rt.cfg.Defense.Enabled }

// LayoutFingerprint returns the component's arena-layout fingerprint as
// of its last boot or reboot (zero before the first reboot when defense
// is off, or for unknown components). Safe from any goroutine.
func (rt *Runtime) LayoutFingerprint(name string) uint64 {
	c, ok := rt.comps[name]
	if !ok {
		return 0
	}
	return c.layoutFP.Load()
}

// ImageMetas returns the metadata of a component's retained checkpoint
// images, oldest first (nil when defense is off or the component has no
// history). Oracles assert quarantine discipline on it.
func (rt *Runtime) ImageMetas(name string) []ckpt.ImageMeta {
	c, ok := rt.comps[name]
	if !ok || c.images == nil {
		return nil
	}
	return c.images.Metas()
}
