package core

import (
	"fmt"
	"sort"
	"time"

	"vampos/internal/mem"
	"vampos/internal/trace"
)

// memAddr narrows a raw address back to the arena address type.
func memAddr(a uint64) mem.Addr { return mem.Addr(a) }

// FaultKind selects the injected failure mode (paper §II-B fault model).
type FaultKind uint8

// Injectable fault kinds.
const (
	// FaultCrash panics inside the handler: a fail-stop crash (invalid
	// pointer dereference, assertion, panic()).
	FaultCrash FaultKind = iota + 1
	// FaultHang parks the handler forever: a deadlock/livelock the hang
	// detector must catch.
	FaultHang
	// FaultErrno makes the armed function return a spurious errno
	// instead of executing: the transient-error path (a device timeout,
	// a dropped request) that must not trigger any recovery machinery.
	FaultErrno
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultHang:
		return "hang"
	case FaultErrno:
		return "errno"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// AnyFunction arms a fault on whichever exported function the component
// is invoked through next — the campaign engine's "fault anywhere in the
// component" injection site.
const AnyFunction = "*"

// FaultSpec describes one armed fault in full.
type FaultSpec struct {
	// Kind selects the failure mode.
	Kind FaultKind
	// After fires the fault on the After-th invocation of the armed
	// function rather than the next one (0 and 1 both mean "next"):
	// earlier invocations execute normally. Campaigns use it to walk a
	// fault through a component's whole invocation history.
	After int
	// Errno is the error returned by a FaultErrno fault; empty means EIO.
	Errno Errno
}

type armedFault struct {
	kind  FaultKind
	count int // invocations remaining until the fault fires
	errno Errno
}

// ArmFault arms a one-shot fault on the next invocation of fn on the
// component. Faults trigger in both message-passing and vanilla modes;
// in vanilla mode a crash takes down the whole image (there is no
// component boundary to contain it), which is exactly the baseline
// behaviour the paper's recovery comparison needs.
func (rt *Runtime) ArmFault(component, fn string, kind FaultKind) error {
	return rt.ArmFaultSpec(component, fn, FaultSpec{Kind: kind})
}

// ArmFaultSpec arms a fault described by spec on component.fn. fn may be
// AnyFunction ("*") to fire on the next invocation of any exported
// function. Arming an unknown component or function fails with an error
// that lists the valid targets, so campaign misconfiguration is
// self-diagnosing.
func (rt *Runtime) ArmFaultSpec(component, fn string, spec FaultSpec) error {
	c, ok := rt.comps[component]
	if !ok {
		return &UnknownComponentError{Name: component, Known: rt.Components()}
	}
	if fn != AnyFunction {
		if _, ok := c.exports[fn]; !ok {
			return &UnknownFunctionError{Component: component, Fn: fn, Known: rt.Exports(component)}
		}
	}
	switch spec.Kind {
	case FaultCrash, FaultHang, FaultErrno:
	default:
		return fmt.Errorf("core: unknown fault kind %v", spec.Kind)
	}
	if spec.After < 1 {
		spec.After = 1
	}
	if spec.Errno == "" {
		spec.Errno = EIO
	}
	rt.armedMu.Lock()
	defer rt.armedMu.Unlock()
	if rt.armed == nil {
		rt.armed = make(map[string]*armedFault)
	}
	rt.armed[component+"."+fn] = &armedFault{kind: spec.Kind, count: spec.After, errno: spec.Errno}
	return nil
}

// PendingFaults lists the armed faults that have not fired yet, as
// "component.fn" keys in sorted order. Campaigns use it to tell a
// survived fault from one that never triggered.
func (rt *Runtime) PendingFaults() []string {
	rt.armedMu.Lock()
	defer rt.armedMu.Unlock()
	out := make([]string, 0, len(rt.armed))
	for k := range rt.armed {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// checkFault fires an armed fault for the invocation, if any. A non-nil
// error means the invocation must not execute and must return that error
// instead (the FaultErrno transient-error path).
func (rt *Runtime) checkFault(ctx *Ctx, component, fn string) error {
	if ctx.InReplay() {
		return nil
	}
	// Resolve under the lock, then act outside it: a crash fault panics and
	// a hang fault never returns, and neither may hold armedMu while other
	// shards' handlers consult their own armed entries.
	rt.armedMu.Lock()
	if rt.armed == nil {
		rt.armedMu.Unlock()
		return nil
	}
	key := component + "." + fn
	f, ok := rt.armed[key]
	if !ok {
		key = component + "." + AnyFunction
		if f, ok = rt.armed[key]; !ok {
			rt.armedMu.Unlock()
			return nil
		}
	}
	f.count--
	if f.count > 0 {
		rt.armedMu.Unlock()
		return nil
	}
	delete(rt.armed, key)
	rt.armedMu.Unlock()
	if tr := rt.tracer; tr != nil {
		tr.Instant(ctx.span, trace.KindFault, component, fn, f.kind.String())
	}
	switch f.kind {
	case FaultCrash:
		panic(fmt.Sprintf("injected %v in %s.%s", f.kind, component, fn))
	case FaultHang:
		for {
			ctx.Sleep(10 * time.Second)
		}
	case FaultErrno:
		return f.errno
	}
	return nil
}

// ComponentHeap exposes a component's arena allocator for fault
// injection (leaks) and aging observation.
func (rt *Runtime) ComponentHeap(name string) (Heap, bool) {
	c, ok := rt.comps[name]
	if !ok || c.heap == nil {
		return nil, false
	}
	return &componentHeap{rt: rt, c: c}, true
}

// Heap is a stable handle onto a component's current arena allocator.
// The underlying allocator object changes across reboots (restores clone
// a fresh one), so the handle re-resolves on every call.
type Heap interface {
	// Alloc reserves n bytes in the component arena.
	Alloc(n int64) (uint64, error)
	// Free releases a block.
	Free(addr uint64) error
	// Stats returns the allocator statistics.
	Stats() HeapStats
}

// HeapStats mirrors mem.BuddyStats for external consumers.
type HeapStats struct {
	TotalBytes       int64
	AllocatedBytes   int64
	FreeBytes        int64
	LiveAllocs       int
	FailedAllocs     uint64
	LargestFreeBlock int64
	Fragmentation    float64
}

type componentHeap struct {
	rt *Runtime
	c  *component
}

func (h *componentHeap) Alloc(n int64) (uint64, error) {
	a, err := h.c.heap.Alloc(n)
	return uint64(a), err
}

func (h *componentHeap) Free(addr uint64) error {
	return h.c.heap.Free(memAddr(addr))
}

func (h *componentHeap) Stats() HeapStats {
	s := h.c.heap.Stats()
	return HeapStats{
		TotalBytes:       s.TotalBytes,
		AllocatedBytes:   s.AllocatedBytes,
		FreeBytes:        s.FreeBytes,
		LiveAllocs:       s.LiveAllocs,
		FailedAllocs:     s.FailedAllocs,
		LargestFreeBlock: s.LargestFreeBlock,
		Fragmentation:    s.ExternalFragmentation(),
	}
}
