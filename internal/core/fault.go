package core

import (
	"fmt"
	"time"

	"vampos/internal/mem"
	"vampos/internal/trace"
)

// memAddr narrows a raw address back to the arena address type.
func memAddr(a uint64) mem.Addr { return mem.Addr(a) }

// FaultKind selects the injected failure mode (paper §II-B fault model).
type FaultKind uint8

// Injectable fault kinds.
const (
	// FaultCrash panics inside the handler: a fail-stop crash (invalid
	// pointer dereference, assertion, panic()).
	FaultCrash FaultKind = iota + 1
	// FaultHang parks the handler forever: a deadlock/livelock the hang
	// detector must catch.
	FaultHang
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultHang:
		return "hang"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

type armedFault struct {
	kind  FaultKind
	count int // invocations remaining before the fault disarms
}

// ArmFault arms a one-shot fault on the next invocation of fn on the
// component. Faults trigger in both message-passing and vanilla modes;
// in vanilla mode a crash takes down the whole image (there is no
// component boundary to contain it), which is exactly the baseline
// behaviour the paper's recovery comparison needs.
func (rt *Runtime) ArmFault(component, fn string, kind FaultKind) error {
	c, ok := rt.comps[component]
	if !ok {
		return &UnknownComponentError{Name: component}
	}
	if _, ok := c.exports[fn]; !ok {
		return &UnknownFunctionError{Component: component, Fn: fn}
	}
	if rt.armed == nil {
		rt.armed = make(map[string]*armedFault)
	}
	rt.armed[component+"."+fn] = &armedFault{kind: kind, count: 1}
	return nil
}

// checkFault fires an armed fault for the invocation, if any.
func (rt *Runtime) checkFault(ctx *Ctx, component, fn string) {
	if rt.armed == nil || ctx.InReplay() {
		return
	}
	f, ok := rt.armed[component+"."+fn]
	if !ok {
		return
	}
	f.count--
	if f.count <= 0 {
		delete(rt.armed, component+"."+fn)
	}
	if tr := rt.tracer; tr != nil {
		tr.Instant(ctx.span, trace.KindFault, component, fn, f.kind.String())
	}
	switch f.kind {
	case FaultCrash:
		panic(fmt.Sprintf("injected %v in %s.%s", f.kind, component, fn))
	case FaultHang:
		for {
			ctx.Sleep(10 * time.Second)
		}
	}
}

// ComponentHeap exposes a component's arena allocator for fault
// injection (leaks) and aging observation.
func (rt *Runtime) ComponentHeap(name string) (Heap, bool) {
	c, ok := rt.comps[name]
	if !ok || c.heap == nil {
		return nil, false
	}
	return &componentHeap{rt: rt, c: c}, true
}

// Heap is a stable handle onto a component's current arena allocator.
// The underlying allocator object changes across reboots (restores clone
// a fresh one), so the handle re-resolves on every call.
type Heap interface {
	// Alloc reserves n bytes in the component arena.
	Alloc(n int64) (uint64, error)
	// Free releases a block.
	Free(addr uint64) error
	// Stats returns the allocator statistics.
	Stats() HeapStats
}

// HeapStats mirrors mem.BuddyStats for external consumers.
type HeapStats struct {
	TotalBytes       int64
	AllocatedBytes   int64
	FreeBytes        int64
	LiveAllocs       int
	FailedAllocs     uint64
	LargestFreeBlock int64
	Fragmentation    float64
}

type componentHeap struct {
	rt *Runtime
	c  *component
}

func (h *componentHeap) Alloc(n int64) (uint64, error) {
	a, err := h.c.heap.Alloc(n)
	return uint64(a), err
}

func (h *componentHeap) Free(addr uint64) error {
	return h.c.heap.Free(memAddr(addr))
}

func (h *componentHeap) Stats() HeapStats {
	s := h.c.heap.Stats()
	return HeapStats{
		TotalBytes:       s.TotalBytes,
		AllocatedBytes:   s.AllocatedBytes,
		FreeBytes:        s.FreeBytes,
		LiveAllocs:       s.LiveAllocs,
		FailedAllocs:     s.FailedAllocs,
		LargestFreeBlock: s.LargestFreeBlock,
		Fragmentation:    s.ExternalFragmentation(),
	}
}
