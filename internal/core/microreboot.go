package core

import (
	"errors"
	"fmt"
	"time"

	"vampos/internal/microreboot"
	"vampos/internal/msg"
	"vampos/internal/sched"
	"vampos/internal/trace"
)

// SessionStatus is the reconciliation state of one session sub-resource
// (re-exported from internal/microreboot for runtime consumers).
type SessionStatus = microreboot.Status

// SessionRegistryStats is the session registry's accounting.
type SessionRegistryStats = microreboot.Stats

// ErrMicrorebootEscalated reports that a requested session microreboot
// could not complete at the session rung and was escalated to a
// whole-component reboot (which succeeded — a failed escalation surfaces
// as ErrComponentFailed instead).
var ErrMicrorebootEscalated = errors.New("core: session microreboot escalated to component reboot")

// MicrorebootRecord describes one completed session microreboot — rung 1
// of the recovery ladder: one session's state evicted from the live
// component and rebuilt by replaying its surviving log slice while every
// other session kept serving.
type MicrorebootRecord struct {
	Component       string
	Session         string
	Reason          string
	VirtualDuration time.Duration
	WallDuration    time.Duration
	ReplayedEntries int
	At              time.Time
}

// microTask carries one in-flight session microreboot from the message
// thread (or a proactive caller) to the group's fresh worker thread,
// which performs the evict + session-slice replay.
type microTask struct {
	comp    *component
	session msg.SessionID
	reason  string
	startV  time.Duration
	startW  time.Time
	// span is the KindMicroreboot trace span; phaseSpan the currently
	// open KindPhase child. Both zero when tracing is off.
	span      trace.SpanID
	phaseSpan trace.SpanID
}

// attributeSession decides whether a detected failure of group g, struck
// while executing fn(args), can be recovered at the session rung. The
// conditions are deliberately conservative — anything not provably
// session-local escalates to the component rung:
//
//   - the configuration opted in (Config.Microreboot);
//   - the group is a singleton: inside a merged group a replayed call to
//     a co-member runs directly with the replay context attached, so it
//     would consult the wrong record's ReplayRets — merged groups always
//     recover at component granularity;
//   - the component is stateful (stateless ones re-init, which is
//     already cheap) and rebootable;
//   - it implements both SessionResolver (to name the session) and
//     SessionEvictor (to remove its live state);
//   - the resolver attributes the call to a session — openers and
//     non-session calls return "" and escalate;
//   - the log holds a live opener for that session, so replaying its
//     slice can actually rebuild it.
func (rt *Runtime) attributeSession(g *group, fn string, args msg.Args) (*component, msg.SessionID, bool) {
	if !rt.cfg.Microreboot || len(g.members) != 1 || fn == "" {
		return nil, "", false
	}
	c := g.members[0]
	if !c.desc.Stateful || c.desc.Unrebootable {
		return nil, "", false
	}
	res, okR := c.comp.(SessionResolver)
	_, okE := c.comp.(SessionEvictor)
	if !okR || !okE {
		return nil, "", false
	}
	session := res.SessionOf(fn, args)
	if session == "" {
		return nil, "", false
	}
	if !c.domain.Log().HasLiveOpener(session) {
		return nil, "", false
	}
	return c, session, true
}

// tryMicroreboot attempts rung-1 recovery for a detected failure. It
// returns false when the failure cannot be attributed to one session, in
// which case the caller proceeds with the component reboot (rung 2).
// Runs on the message thread (crash path) or the watchdog (hang path).
func (rt *Runtime) tryMicroreboot(g *group, fn string, args msg.Args, reason string, killWorker bool, parent trace.SpanID) bool {
	c, session, ok := rt.attributeSession(g, fn, args)
	if !ok {
		return false
	}
	if err := rt.sessions.BeginRecovery(c.desc.Name, string(session), reason); err != nil {
		// The registry refuses (session already recovering/escalated):
		// stacking recoveries is unsound, move up the ladder.
		return false
	}
	rt.beginMicroreboot(g, c, session, reason, killWorker, parent)
	return true
}

// beginMicroreboot transitions a group into session-granular
// restoration: the fresh worker evicts the session and replays its log
// slice instead of restoring the whole group. Mirrors beginReboot —
// queued requests are delayed, not lost.
func (rt *Runtime) beginMicroreboot(g *group, c *component, session msg.SessionID, reason string, killWorker bool, parent trace.SpanID) {
	g.rebooting = true
	task := &microTask{
		comp: c, session: session, reason: reason,
		startV: rt.clk.Elapsed(),
	}
	//vampos:allow detclock -- microreboot latency is reported in wall time alongside virtual time (MicrorebootRecord.WallDuration); the reading never feeds back into the simulation
	task.startW = time.Now()
	if tr := rt.tracer; tr != nil {
		task.span = tr.Begin(parent, trace.KindMicroreboot, c.desc.Name, "", string(session))
		task.phaseSpan = tr.Begin(task.span, trace.KindPhase, g.name, "", trace.PhaseQuiesce)
	}
	g.micro = task
	if killWorker && g.worker != nil && g.worker.t.State() != sched.StateDone {
		g.worker.t.Kill()
	}
	rt.spawnWorker(g, true)
}

// microrebootGroup performs rung-1 recovery on the group's new worker
// thread: evict the faulted session's live state, then replay its
// surviving log slice (opener, durables, open transient tail — exactly
// what the session-aware shrinker preserves) against the running
// component. Outbound calls during replay feed from the logged results,
// so downstream components are never disturbed. An error escalates to a
// whole-component reboot.
func (rt *Runtime) microrebootGroup(t *sched.Thread, g *group, task *microTask) error {
	tr := rt.tracer
	c := task.comp
	if tr != nil {
		// The new worker's first dispatch ends quiescence; phases tile
		// the microreboot span the way reboot phases tile KindReboot.
		tr.End(task.phaseSpan)
		task.phaseSpan = tr.Begin(task.span, trace.KindPhase, g.name, "", trace.PhaseEvict)
	}
	ev, ok := c.comp.(SessionEvictor)
	if !ok {
		return fmt.Errorf("core: %q lost its session evictor", c.desc.Name)
	}
	ctx := &Ctx{rt: rt, comp: c, th: t, span: task.phaseSpan}
	if err := ev.EvictSession(ctx, task.session); err != nil {
		return fmt.Errorf("core: evict %s/%s: %w", c.desc.Name, task.session, err)
	}
	if tr != nil {
		tr.End(task.phaseSpan)
		task.phaseSpan = tr.Begin(task.span, trace.KindPhase, g.name, "", trace.PhaseReplay)
	}
	views, err := c.domain.Log().SessionEntries(task.session)
	if err != nil {
		return err
	}
	replayed := 0
	for i := range views {
		v := &views[i]
		h, ok := c.exports[v.Fn]
		if !ok {
			return &UnknownFunctionError{Component: c.desc.Name, Fn: v.Fn}
		}
		rs := &replayState{grp: g, rec: v}
		rctx := &Ctx{rt: rt, comp: c, th: t, replay: rs, span: task.phaseSpan}
		rets, herr, pv, panicked := rt.invoke(h, rctx, v.Args)
		if panicked {
			return fmt.Errorf("core: session replay of %s.%s panicked: %v", c.desc.Name, v.Fn, pv)
		}
		if de, ok := herr.(*ReplayDivergenceError); ok {
			return de
		}
		if rs.diverged != nil {
			return rs.diverged
		}
		if rt.cfg.ReplayRetCheck && !v.Synthetic && v.Class != msg.ClassCanceler {
			// Same determinism oracle and exemptions as restoreGroup.
			if de := replayRetDivergence(c.desc.Name, v, rets, herr); de != nil {
				if tr != nil {
					tr.Instant(task.phaseSpan, trace.KindDetect, c.desc.Name, "replay-divergence", de.Error())
				}
				return de
			}
		}
		t.Charge(rt.costs.ReplayPerEntry)
		c.domain.Log().MarkReplayed(1)
		replayed++
	}
	if tr != nil {
		tr.End(task.phaseSpan)
		task.phaseSpan = tr.Begin(task.span, trace.KindPhase, g.name, "", trace.PhaseResume)
	}
	// No checkpoint restore, no runtime-state reinstall: the component
	// never went down — only the one session was rebuilt.
	if err := rt.sessions.Resolve(c.desc.Name, string(task.session)); err != nil {
		return err
	}
	rt.stats.microreboots.Add(1)
	c.micro.Add(1)
	rt.recMu.Lock()
	rt.microreboots = append(rt.microreboots, MicrorebootRecord{
		Component: c.desc.Name,
		Session:   string(task.session),
		Reason:    task.reason,
		// Worker-thread time view, as in restoreGroup's RebootRecord.
		VirtualDuration: t.Elapsed() - task.startV,
		//vampos:allow detclock -- closes the wall-time measurement opened in beginMicroreboot; presentation-only
		WallDuration:    time.Since(task.startW),
		ReplayedEntries: replayed,
		At:              rt.clk.At(t.Elapsed()),
	})
	rt.recMu.Unlock()
	if tr != nil {
		tr.End(task.phaseSpan)
		tr.EndErr(task.span, "ok")
	}
	return nil
}

// escalateMicro abandons a failed rung-1 attempt and sets the group up
// for the component reboot (rung 2) that follows on the same worker. The
// reboot is bookkept from the microreboot's start, so rung-2 latency
// honestly includes the failed rung-1 attempt; its trace span is a child
// of the escalated microreboot span, preserving the causal chain.
func (rt *Runtime) escalateMicro(g *group, task *microTask, cause error) {
	rt.stats.microEscalations.Add(1)
	// Best-effort: the registry may refuse if the entry was never
	// registered, which cannot happen on this path, but stay nil-safe.
	_ = rt.sessions.Escalate(task.comp.desc.Name, string(task.session), cause.Error())
	g.rebootReason = fmt.Sprintf("%s (escalated from session %s: %v)", task.reason, task.session, cause)
	g.rebootStartV = task.startV
	g.rebootStartW = task.startW
	if tr := rt.tracer; tr != nil {
		tr.End(task.phaseSpan)
		tr.EndErr(task.span, "escalated: "+cause.Error())
		g.rebootSpan = tr.Begin(task.span, trace.KindReboot, g.name, "", g.rebootReason)
		g.quiesceSpan = tr.Begin(g.rebootSpan, trace.KindPhase, g.name, "", trace.PhaseQuiesce)
	}
}

// Microreboots returns the completed session-microreboot records in
// order. Safe to call from any goroutine.
func (rt *Runtime) Microreboots() []MicrorebootRecord {
	rt.recMu.Lock()
	defer rt.recMu.Unlock()
	out := make([]MicrorebootRecord, len(rt.microreboots))
	copy(out, rt.microreboots)
	return out
}

// Sessions returns the session sub-resource snapshot of the registry
// (nil slice when the Microreboot config is off).
func (rt *Runtime) Sessions() []SessionStatus {
	return rt.sessions.Snapshot()
}

// SessionStats returns the session registry's accounting (zero when the
// Microreboot config is off).
func (rt *Runtime) SessionStats() SessionRegistryStats {
	return rt.sessions.Stats()
}

// MicrorebootSession proactively microreboots one session of the named
// component: evict its live state and rebuild it from the log while the
// component keeps serving every other session. The preconditions mirror
// the failure-path attribution; an attempt that escalates returns
// ErrMicrorebootEscalated after the component reboot completes.
func (c *Ctx) MicrorebootSession(name, session string) error {
	rt := c.rt
	tc, ok := rt.comps[name]
	if !ok {
		return &UnknownComponentError{Name: name}
	}
	if !rt.cfg.MessagePassing || !rt.cfg.Microreboot {
		return fmt.Errorf("core: session microreboot of %q requires the Microreboot configuration", name)
	}
	g := tc.group
	if len(g.members) != 1 {
		return fmt.Errorf("core: %q is merged into %s; session microreboots need a singleton group", name, g.name)
	}
	if tc.desc.Unrebootable {
		return fmt.Errorf("%w: %s shares state with the host", ErrUnrebootable, name)
	}
	if g.failedTwice {
		return fmt.Errorf("%w: %s", ErrComponentFailed, name)
	}
	if c.comp != nil && c.comp.group == g {
		return fmt.Errorf("core: component %q cannot microreboot its own session", name)
	}
	if _, okE := tc.comp.(SessionEvictor); !okE || !tc.desc.Stateful {
		return fmt.Errorf("core: %q does not support session eviction", name)
	}
	sid := msg.SessionID(session)
	// Wait until the group is between requests; cooperative scheduling
	// makes the check-and-set race-free (cf. rebootAs).
	for g.rebooting || g.currentSeq != 0 {
		c.th.Sleep(10 * time.Microsecond)
	}
	if !tc.domain.Log().HasLiveOpener(sid) {
		return fmt.Errorf("core: %s/%s has no live opener in the log", name, session)
	}
	if err := rt.sessions.BeginRecovery(name, session, "proactive"); err != nil {
		return err
	}
	rt.recMu.Lock()
	before := len(rt.microreboots)
	rt.recMu.Unlock()
	rt.beginMicroreboot(g, tc, sid, "proactive", true, c.span)
	for g.rebooting {
		c.th.Sleep(10 * time.Microsecond)
	}
	if g.failedTwice {
		return fmt.Errorf("%w: %s", ErrComponentFailed, name)
	}
	rt.recMu.Lock()
	after := len(rt.microreboots)
	rt.recMu.Unlock()
	if after == before {
		return fmt.Errorf("%w: %s/%s", ErrMicrorebootEscalated, name, session)
	}
	return nil
}
