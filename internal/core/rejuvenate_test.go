package core

import (
	"strconv"
	"testing"
	"time"
)

func TestRejuvenatorCyclesComponents(t *testing.T) {
	kv := &kvComp{name: "kv"}
	other := &statelessComp{name: "other"}
	virtio := virtioStub{}
	rt := run(t, DaSConfig(), []Component{kv, other, virtio}, func(c *Ctx) {
		rej := c.Runtime().NewRejuvenator(time.Millisecond)
		// The default schedule skips unrebootable components.
		for _, tgt := range rej.Targets() {
			if tgt == "virtio" {
				t.Fatalf("schedule includes unrebootable virtio: %v", rej.Targets())
			}
		}
		c.Go("rejuvenator", rej.Run)
		// Work keeps flowing while the schedule runs.
		for i := 0; i < 50; i++ {
			mustCall(t, c, "kv", "put", "k"+strconv.Itoa(i), "v")
			c.Sleep(100 * time.Microsecond)
		}
		for rej.Rounds < 2 {
			c.Sleep(time.Millisecond)
		}
		rej.Stop()
		if rej.Errors != 0 {
			t.Fatalf("rejuvenation errors: %d (last: %v)", rej.Errors, rej.LastErr)
		}
		// All writes survived the rolling reboots.
		for i := 0; i < 50; i++ {
			rets := mustCall(t, c, "kv", "get", "k"+strconv.Itoa(i))
			if v, _ := rets.Str(0); v != "v" {
				t.Fatalf("k%d = %q after rejuvenation", i, v)
			}
		}
	})
	if len(rt.Reboots()) < 4 {
		t.Fatalf("only %d reboots recorded", len(rt.Reboots()))
	}
}

func TestRejuvenatorExplicitTargets(t *testing.T) {
	kv := &kvComp{name: "kv"}
	run(t, DaSConfig(), []Component{kv, &statelessComp{name: "other"}}, func(c *Ctx) {
		rej := c.Runtime().NewRejuvenator(time.Millisecond, "kv")
		c.Go("rej", rej.Run)
		for rej.Reboots < 3 {
			c.Sleep(time.Millisecond)
		}
		rej.Stop()
		cs, _ := c.Runtime().ComponentStats("other")
		if cs.Reboots != 0 {
			t.Fatalf("untargeted component rebooted %d times", cs.Reboots)
		}
	})
}
