package core

import (
	"fmt"
	"time"

	"vampos/internal/msg"
	"vampos/internal/sched"
	"vampos/internal/trace"
)

// pendingCall tracks one in-flight cross-component call.
type pendingCall struct {
	seq     uint64
	from    string
	fromGrp *group // nil for application callers
	to      *component
	fn      string
	args    msg.Args
	caller  *sched.Thread
	rec     *msg.Record // inbound log record, nil when not logged

	done     bool
	rets     msg.Args
	errStr   string
	rebooted bool // failed because the target rebooted: retryable once
	noReply  bool // fire-and-forget injection

	// span is the call's trace span (zero when tracing is off). Callers
	// with a thread close it on wake-up; finishCall closes it for
	// fire-and-forget injections.
	span trace.SpanID
}

// mqKind selects the message-thread work item type.
type mqKind uint8

const (
	mqPush mqKind = iota + 1
	mqReply
	mqFailure
	mqTamper // arena seal broke: taint-aware reboot of comp's group
	mqBreach // handler raised protection faults: reboot the offender
)

// mqItem is one unit of message-thread work.
type mqItem struct {
	kind   mqKind
	pc     *pendingCall
	rets   msg.Args
	errStr string
	grp    *group     // mqFailure, mqTamper, mqBreach
	comp   *component // mqTamper: victim; mqBreach: offender
	seq    uint64     // mqFailure: seq in flight; mqTamper: taint watermark
	reason string     // mqFailure: panic value; mqTamper: detector name
}

// submit hands an item to the message thread. Conductor-dispatched
// contexts only: the queue and the wake both mutate conductor-owned
// state. Domain-thread code paths go through submitFrom.
func (rt *Runtime) submit(it mqItem) {
	rt.mq = append(rt.mq, it)
	if rt.msgThread != nil {
		rt.msgThread.Wake()
		rt.sch.Hint(rt.msgThread)
	}
}

// submitFrom hands an item to the message thread on behalf of th. When
// th is executing inside a buffered round slice the submission is
// journaled, landing on the queue at commit in the deterministic merge
// order — the seqlocked handoff at the cross-shard boundary.
func (rt *Runtime) submitFrom(th *sched.Thread, it mqItem) {
	if th != nil && th.Buffering() {
		th.Do(func() { rt.submit(it) })
		return
	}
	rt.submit(it)
}

// Call invokes fn on the target component. In vanilla mode (and within a
// merged group) this is a direct function call on the caller's context;
// otherwise the call becomes a message: the message thread stores the
// arguments in the target's message domain (logging them if the target's
// policy asks), the target's thread executes the function, and the
// message thread carries the results back (logging them into the
// caller's record when the caller is a logged component).
func (c *Ctx) Call(target, fn string, args ...any) (msg.Args, error) {
	rt := c.rt
	tc, ok := rt.comps[target]
	if !ok {
		return nil, &UnknownComponentError{Name: target}
	}
	// During encapsulated restoration, calls leaving the rebooting group
	// are answered from the log instead of disturbing running components.
	if c.replay != nil && tc.group != c.replay.grp {
		return rt.feedFromLog(c, target, fn)
	}
	h, ok := tc.exports[fn]
	if !ok {
		return nil, &UnknownFunctionError{Component: target, Fn: fn}
	}
	sameGroup := c.comp != nil && c.comp.group == tc.group
	if !rt.cfg.MessagePassing || sameGroup {
		rt.stats.directCalls.Add(1)
		rt.chargeOn(c.th, rt.costs.DirectCall)
		sub := &Ctx{rt: rt, comp: tc, th: c.th, replay: c.replay}
		if tr := rt.tracer; tr != nil {
			sub.span = tr.Begin(c.span, trace.KindDirect, c.callerName(), target, fn)
		}
		var rets msg.Args
		err := rt.checkFault(sub, target, fn)
		if err == nil {
			rets, err = h(sub, msg.Args(args))
		}
		if tr := rt.tracer; tr != nil {
			tr.EndErr(sub.span, errnoString(err))
		}
		return rets, err
	}
	return rt.callMessage(c, tc, fn, msg.Args(args))
}

// callMessage performs one message-passing call, transparently retrying
// once when the target reboots mid-call (re-executing the same input, as
// the fault model prescribes), and failing permanently after that.
func (rt *Runtime) callMessage(c *Ctx, tc *component, fn string, args msg.Args) (msg.Args, error) {
	g := tc.group
	if g.failedTwice {
		return nil, fmt.Errorf("%w: %s", ErrComponentFailed, tc.desc.Name)
	}
	var fromGrp *group
	if c.comp != nil {
		fromGrp = c.comp.group
	}
	for attempt := 0; ; attempt++ {
		// The call's sequence number and pending-map entry are assigned
		// by the message thread in handlePush: callers may be executing
		// on different shards concurrently, and the conductor-side queue
		// drain is the one place with a canonical order.
		pc := &pendingCall{
			from: c.callerName(), fromGrp: fromGrp,
			to: tc, fn: fn, args: args, caller: c.th,
		}
		if tr := rt.tracer; tr != nil {
			pc.span = tr.Begin(c.span, trace.KindCall, c.callerName(), tc.desc.Name, fn)
			if attempt > 0 {
				tr.Annotate(pc.span, "retry after reboot")
			}
		}
		rt.stats.calls.Add(1)
		rt.submitFrom(c.th, mqItem{kind: mqPush, pc: pc})
		for !pc.done {
			c.th.Block("call " + tc.desc.Name + "." + fn)
		}
		if !pc.rebooted {
			if tr := rt.tracer; tr != nil {
				tr.EndErr(pc.span, pc.errStr)
			}
			return pc.rets, errnoFromString(pc.errStr)
		}
		if tr := rt.tracer; tr != nil {
			tr.EndErr(pc.span, "aborted: target rebooted")
		}
		if attempt >= rt.cfg.CallRetry {
			// The same input failed again: a deterministic bug. Try the
			// registered multi-version fallback before fail-stopping.
			if rt.trySwapFallback(c.th, tc) {
				continue
			}
			g.failedTwice = true
			c.th.Do(func() { rt.notifyFailStop(g) })
			return nil, fmt.Errorf("%w: %s.%s failed across reboot", ErrComponentFailed, tc.desc.Name, fn)
		}
		// Wait out the reboot, then re-submit the same input.
		for g.rebooting {
			c.th.Sleep(10 * time.Microsecond)
		}
		if g.failedTwice {
			c.th.Do(func() { rt.notifyFailStop(g) })
			return nil, fmt.Errorf("%w: %s", ErrComponentFailed, tc.desc.Name)
		}
	}
}

// Inject performs a fire-and-forget invocation: virtual IRQs (virtio
// completions) and timer-driven pumps use it. In vanilla mode the handler
// runs directly on the calling thread, like an interrupt borrowing the
// interrupted context.
func (rt *Runtime) Inject(from *Ctx, target, fn string, args ...any) error {
	tc, ok := rt.comps[target]
	if !ok {
		return &UnknownComponentError{Name: target}
	}
	rt.stats.injects.Add(1)
	th := from.th
	if th == nil {
		// IRQ contexts borrow whichever simulated thread raised the
		// interrupt, like a real interrupt borrowing the interrupted
		// context.
		th = rt.sch.Current()
	}
	if !rt.cfg.MessagePassing {
		h, ok := tc.exports[fn]
		if !ok {
			return &UnknownFunctionError{Component: target, Fn: fn}
		}
		sub := &Ctx{rt: rt, comp: tc, th: th}
		if tr := rt.tracer; tr != nil {
			sub.span = tr.Begin(from.span, trace.KindDirect, from.callerName(), target, fn)
		}
		_, err := h(sub, msg.Args(args))
		if tr := rt.tracer; tr != nil {
			tr.EndErr(sub.span, errnoString(err))
		}
		return err
	}
	pc := &pendingCall{
		from: from.callerName(),
		to:   tc, fn: fn, args: msg.Args(args), caller: th, noReply: true,
	}
	if tr := rt.tracer; tr != nil {
		pc.span = tr.Begin(from.span, trace.KindCall, from.callerName(), tc.desc.Name, fn)
		tr.Annotate(pc.span, "inject")
	}
	rt.submitFrom(th, mqItem{kind: mqPush, pc: pc})
	return nil
}

// loggingWanted reports whether calls to fn on c are logged.
func (rt *Runtime) loggingWanted(c *component, fn string) bool {
	if !c.desc.Stateful || c.policies == nil {
		return false
	}
	_, ok := c.policies[fn]
	return ok
}

// msgLoop is the message thread (paper §V-D): it owns every message
// domain, performs all log writes, and turns detected failures into
// component reboots.
func (rt *Runtime) msgLoop(t *sched.Thread) {
	for !rt.stopped {
		if len(rt.mq) == 0 {
			t.Block("msg idle")
			continue
		}
		it := rt.mq[0]
		rt.mq = rt.mq[1:]
		switch it.kind {
		case mqPush:
			rt.handlePush(it.pc)
		case mqReply:
			rt.handleReply(it.pc, it.rets, it.errStr)
		case mqFailure:
			rt.handleFailure(it.grp, it.seq, it.reason)
		case mqTamper:
			rt.handleTamper(it.grp, it.comp, it.seq, it.reason)
		case mqBreach:
			rt.handleBreach(it.grp, it.comp)
		}
	}
}

func (rt *Runtime) handlePush(pc *pendingCall) {
	g := pc.to.group
	// Sequence numbers are minted here, on the message thread, in queue
	// drain order: with callers running on parallel shards this is the
	// first point with a canonical total order, and with a single baton
	// it assigns exactly the values the caller-side increment used to.
	rt.nextSeq++
	pc.seq = rt.nextSeq
	rt.pending[pc.seq] = pc
	rt.stats.messages.Add(1)
	rt.charge(rt.costs.MessagePush)
	if rt.loggingWanted(pc.to, pc.fn) {
		rt.charge(rt.costs.LogAppend)
		rec, err := pc.to.domain.Log().BeginInbound(pc.seq, pc.fn, pc.args)
		if err != nil {
			rt.finishCall(pc, nil, "ENOSPC: "+err.Error())
			return
		}
		pc.rec = rec
	}
	if tr := rt.tracer; tr != nil {
		tr.Instant(pc.span, trace.KindPush, "vampos/msg", pc.fn, "to "+pc.to.desc.Name)
	}
	if err := g.mailbox.Push(&msg.Message{
		Seq: pc.seq, From: pc.from, To: pc.to.desc.Name, Fn: pc.fn, Args: pc.args,
	}); err != nil {
		if pc.rec != nil {
			pc.to.domain.Log().DropRecord(pc.rec)
			pc.rec = nil
		}
		rt.finishCall(pc, nil, "ENOSPC: "+err.Error())
		return
	}
	if w := g.worker; w != nil && !g.rebooting {
		w.t.Wake()
		rt.sch.Hint(w.t)
	}
}

func (rt *Runtime) handleReply(pc *pendingCall, rets msg.Args, errStr string) {
	rt.charge(rt.costs.MessagePull)
	if pc.rec != nil {
		rt.charge(rt.costs.LogAppend)
		lg := pc.to.domain.Log()
		pol := pc.to.policies[pc.fn]
		if errStr != "" && !pol.KeepFailed {
			// A failed call changed no component state: logging it would
			// only bloat the replay (EAGAIN accept/recv polls especially).
			lg.DropRecord(pc.rec)
		} else {
			sess, class := msg.SessionID(""), msg.ClassDurable
			if pol.Classify != nil {
				sess, class = pol.Classify(pc.args, rets, errnoFromString(errStr))
			}
			if err := lg.EndInbound(pc.rec, sess, class, rets, errStr); err != nil {
				errStr = "ENOSPC: " + err.Error()
			}
			// Session sub-resource lifecycle (nil-safe when the
			// Microreboot config is off): openers birth sub-resources,
			// cancelers dissolve them.
			if sess != "" {
				switch class {
				case msg.ClassOpener:
					rt.sessions.Observe(pc.to.desc.Name, string(sess))
				case msg.ClassCanceler:
					rt.sessions.Dissolve(pc.to.desc.Name, string(sess))
				}
			}
			rt.maybeCompact(pc.to)
		}
	}
	// Return-value logging for encapsulated restoration of the caller.
	if pc.fromGrp != nil && pc.fromGrp.curRec != nil {
		rt.charge(rt.costs.LogAppend)
		if err := pc.fromGrp.curLog.AppendOutboundTo(pc.fromGrp.curRec, pc.to.desc.Name, pc.fn, rets, errStr); err != nil {
			// A full caller domain poisons future restoration of the
			// caller; surface it as the call's error.
			errStr = "ENOSPC: " + err.Error()
		}
	}
	rt.finishCall(pc, rets, errStr)
}

// finishCall resolves a pending call and wakes its caller.
func (rt *Runtime) finishCall(pc *pendingCall, rets msg.Args, errStr string) {
	pc.rets = rets
	pc.errStr = errStr
	pc.done = true
	// The pending map is conductor-owned; remove the entry here rather
	// than on the caller's thread (which may park on another shard).
	delete(rt.pending, pc.seq)
	if pc.noReply || pc.caller == nil || pc.caller.State() == sched.StateDone {
		// Nobody will wake to close the call span; close it here.
		if tr := rt.tracer; tr != nil {
			tr.EndErr(pc.span, errStr)
		}
		return
	}
	pc.caller.Wake()
	rt.sch.Hint(pc.caller)
}

// maybeCompact triggers the component's log compactor once the log
// exceeds the configured shrink threshold (§V-F).
func (rt *Runtime) maybeCompact(c *component) {
	if !rt.cfg.LogShrinkEnabled {
		return
	}
	lg := c.domain.Log()
	if lg.Len() <= rt.cfg.LogShrinkThreshold {
		return
	}
	if comp, ok := c.comp.(Compactor); ok {
		before := lg.Len()
		if err := comp.CompactLog(lg); err != nil {
			// Compaction is an optimisation: a failure only means the log
			// stays longer. Record it and continue.
			rt.stats.compactErrors.Add(1)
		}
		// Scanning and rewriting the log costs time proportional to the
		// entries touched — why very low thresholds hurt (Table IV).
		touched := before
		if after := lg.Len(); before-after > touched {
			touched = before - after
		}
		rt.charge(time.Duration(touched) * rt.costs.LogAppend)
	}
}

// feedFromLog answers an out-of-group call during replay from the logged
// outbound results (paper Fig. 3).
func (rt *Runtime) feedFromLog(c *Ctx, target, fn string) (msg.Args, error) {
	rs := c.replay
	if rs.idx >= len(rs.rec.Outbound) {
		de := &ReplayDivergenceError{
			Component: c.comp.desc.Name,
			GotTarget: target, GotFn: fn,
			WantTarget: "(log exhausted)", WantFn: "",
			Seq: rs.rec.Seq,
		}
		rs.diverged = de
		return nil, de
	}
	ob := rs.rec.Outbound[rs.idx]
	if ob.Target != target || ob.Fn != fn {
		de := &ReplayDivergenceError{
			Component:  c.comp.desc.Name,
			WantTarget: ob.Target, WantFn: ob.Fn,
			GotTarget: target, GotFn: fn,
			Seq: rs.rec.Seq,
		}
		rs.diverged = de
		return nil, de
	}
	rs.idx++
	return ob.Rets, errnoFromString(ob.Err)
}
