// Package core implements the VampOS runtime: message-passing component
// interaction (§V-A), encapsulated restoration (§V-B), dependency-aware
// scheduling (§V-C), component-level protection domains (§V-D),
// checkpoint-based initialization (§V-E), component merging and
// session-aware log shrinking (§V-F), plus the failure detectors and the
// reboot manager that tie them together.
package core

import (
	"errors"
	"fmt"
	"strings"
)

// Errno is a POSIX-flavoured error that survives the message-passing
// boundary: handler errors are carried between components as strings and
// rehydrated as Errno values, so expected conditions (EAGAIN, ENOENT…)
// stay comparable with errors.Is across component reboots and replays.
type Errno string

// Error implements error.
func (e Errno) Error() string { return string(e) }

// Common errnos used by the component interfaces.
const (
	EAGAIN       Errno = "EAGAIN"
	EBADF        Errno = "EBADF"
	EEXIST       Errno = "EEXIST"
	EINVAL       Errno = "EINVAL"
	EISDIR       Errno = "EISDIR"
	ENFILE       Errno = "ENFILE"
	ENOENT       Errno = "ENOENT"
	ENOSPC       Errno = "ENOSPC"
	ENOSYS       Errno = "ENOSYS"
	ENOTDIR      Errno = "ENOTDIR"
	ENOTEMPTY    Errno = "ENOTEMPTY"
	ENOTCONN     Errno = "ENOTCONN"
	ECONNRESET   Errno = "ECONNRESET"
	ECONNREFUSED Errno = "ECONNREFUSED"
	EPIPE        Errno = "EPIPE"
	EADDRINUSE   Errno = "EADDRINUSE"
	EMSGSIZE     Errno = "EMSGSIZE"
	EIO          Errno = "EIO"
)

// Sentinel errors surfaced by the runtime itself.
var (
	// ErrComponentRebooted reports that the target component failed (or
	// was proactively rebooted) while handling the call. Call retries
	// such failures once transparently — re-executing the same input, as
	// the paper's fault model prescribes — before surfacing this error.
	ErrComponentRebooted = errors.New("core: component rebooted during call")

	// ErrComponentFailed reports a component that failed again right
	// after a reboot: the deterministic-fault fail-stop of §II-B.
	ErrComponentFailed = errors.New("core: component failed permanently")

	// ErrUnrebootable reports an attempt to reboot a component whose
	// state is shared with the host (VIRTIO, §VIII).
	ErrUnrebootable = errors.New("core: component is unrebootable")

	// ErrStopped reports that the runtime is shutting down.
	ErrStopped = errors.New("core: runtime stopped")
)

// UnknownComponentError reports a call to a component that was never
// registered in this unikernel configuration. Known, when populated,
// lists the components that are registered, so a misdirected fault
// injection or call is self-diagnosing.
type UnknownComponentError struct {
	Name  string
	Known []string
}

func (e *UnknownComponentError) Error() string {
	if len(e.Known) == 0 {
		return fmt.Sprintf("core: unknown component %q", e.Name)
	}
	return fmt.Sprintf("core: unknown component %q (registered: %s)", e.Name, strings.Join(e.Known, ", "))
}

// UnknownFunctionError reports a call to a function the target component
// does not export. Known, when populated, lists the functions the
// component does export.
type UnknownFunctionError struct {
	Component, Fn string
	Known         []string
}

func (e *UnknownFunctionError) Error() string {
	if len(e.Known) == 0 {
		return fmt.Sprintf("core: component %q does not export %q", e.Component, e.Fn)
	}
	return fmt.Sprintf("core: component %q does not export %q (exports: %s)", e.Component, e.Fn, strings.Join(e.Known, ", "))
}

// ReplayDivergenceError reports that during encapsulated restoration a
// component diverged from its log: it issued an outbound call that does
// not match the logged one, or (with Config.ReplayRetCheck enabled) a
// replayed call produced different results than the original — either
// way, the log can no longer restore this component consistently.
type ReplayDivergenceError struct {
	Component  string
	WantTarget string
	WantFn     string
	GotTarget  string
	GotFn      string
	// RetMismatch marks a return-value divergence found by the opt-in
	// ReplayRetCheck; Detail describes the mismatch.
	RetMismatch bool
	Detail      string
	// Seq is the log sequence number of the diverging record — the first
	// suspect seq. Taint-aware recovery uses it as the taint watermark:
	// roll back to an image strictly predating it.
	Seq uint64
}

func (e *ReplayDivergenceError) Error() string {
	if e.RetMismatch {
		return fmt.Sprintf("core: replay of %q diverged on %s results: %s",
			e.Component, e.WantFn, e.Detail)
	}
	return fmt.Sprintf("core: replay of %q diverged: logged outbound %s.%s, component issued %s.%s",
		e.Component, e.WantTarget, e.WantFn, e.GotTarget, e.GotFn)
}

// errnoString flattens a handler error for transport; empty means nil.
func errnoString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// errnoFromString rehydrates a transported error.
func errnoFromString(s string) error {
	if s == "" {
		return nil
	}
	return Errno(s)
}
