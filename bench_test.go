package vampos_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (§VII). ns/op here is the wall-clock cost of simulating one operation;
// the calibrated virtual-time results the paper's numbers map onto are
// produced by `go run ./cmd/vampos-bench` (or internal/bench directly).

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"vampos"
	"vampos/internal/apps/echo"
	"vampos/internal/apps/nginx"
	"vampos/internal/apps/redis"
	"vampos/internal/apps/sqlite"
	"vampos/internal/bench"
	"vampos/internal/sched"
)

// benchConfigs are the two headline configurations; the full five-way
// comparison runs in internal/bench.
var benchConfigs = []struct {
	name string
	core func() vampos.CoreConfig
}{
	{"unikraft", vampos.VanillaConfig},
	{"vampos-das", vampos.DaSConfig},
}

// runBench boots an instance and executes body as the controller.
func runBench(b *testing.B, coreCfg vampos.CoreConfig, body func(s *vampos.Sys)) {
	b.Helper()
	coreCfg.MaxVirtualTime = 12 * time.Hour
	inst, err := vampos.New(vampos.Config{Core: coreCfg, FS: true, Net: true, Sysinfo: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := inst.Host().FS().WriteFile("/www/index.html", []byte(strings.Repeat("x", 180))); err != nil {
		b.Fatal(err)
	}
	if err := inst.Run(func(s *vampos.Sys) {
		defer s.Stop()
		body(s)
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig5SyscallOverhead measures the paper's seven system calls
// (Fig. 5) under the vanilla and DaS configurations.
func BenchmarkFig5SyscallOverhead(b *testing.B) {
	type op struct {
		name string
		run  func(s *vampos.Sys, fd int) error
	}
	ops := []op{
		{"getpid", func(s *vampos.Sys, _ int) error {
			_, err := s.Getpid()
			return err
		}},
		{"open_close", func(s *vampos.Sys, _ int) error {
			fd, err := s.Open("/bench.dat", vampos.ORdonly)
			if err != nil {
				return err
			}
			return s.Close(fd)
		}},
		{"write", func(s *vampos.Sys, fd int) error {
			_, err := s.Pwrite(fd, []byte("y"), 0)
			return err
		}},
		{"read", func(s *vampos.Sys, fd int) error {
			_, err := s.Pread(fd, 1, 0)
			return err
		}},
	}
	for _, cfg := range benchConfigs {
		for _, o := range ops {
			b.Run(cfg.name+"/"+o.name, func(b *testing.B) {
				runBench(b, cfg.core(), func(s *vampos.Sys) {
					fd, err := s.Open("/bench.dat", vampos.OCreate|vampos.ORdwr)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := s.Write(fd, []byte("seed")); err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := o.run(s, fd); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
				})
			})
		}
	}
}

// BenchmarkTable3LogShrinking measures the session-aware log shrinking
// machinery (Table III): open/write/close cycles with fd reuse.
func BenchmarkTable3LogShrinking(b *testing.B) {
	for _, shrink := range []bool{false, true} {
		name := "shrink-off"
		if shrink {
			name = "shrink-on"
		}
		b.Run(name, func(b *testing.B) {
			cc := vampos.DaSConfig()
			cc.LogShrinkEnabled = shrink
			cc.LogShrinkThreshold = 1 << 20
			runBench(b, cc, func(s *vampos.Sys) {
				rt := s.Instance().Runtime()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if !shrink && i%1000 == 999 {
						// Without shrinking the log grows without bound
						// (the §V-F failure mode); drain it outside the
						// timed region so b.N can scale.
						b.StopTimer()
						for _, comp := range []string{"vfs", "9pfs", "lwip"} {
							rt.ResetLog(comp)
						}
						b.StartTimer()
					}
					fd, err := s.Open("/bench.dat", vampos.OCreate|vampos.OWronly)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := s.Write(fd, []byte("x")); err != nil {
						b.Fatal(err)
					}
					if err := s.Close(fd); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
			})
		})
	}
}

// BenchmarkFig6ComponentReboot measures one component reboot per
// iteration for each of the paper's Fig. 6 targets.
func BenchmarkFig6ComponentReboot(b *testing.B) {
	for _, target := range []struct {
		name string
		core func() vampos.CoreConfig
		comp string
	}{
		{"PROCESS", vampos.DaSConfig, "process"},
		{"VFS", vampos.DaSConfig, "vfs"},
		{"LWIP", vampos.DaSConfig, "lwip"},
		{"9PFS", vampos.DaSConfig, "9pfs"},
		{"VFS+9PFS", vampos.FSmConfig, "vfs"},
		{"LWIP+NETDEV", vampos.NETmConfig, "lwip"},
	} {
		b.Run(target.name, func(b *testing.B) {
			runBench(b, target.core(), func(s *vampos.Sys) {
				// A little state so stateful reboots have logs to replay.
				fd, err := s.Open("/warm.dat", vampos.OCreate|vampos.ORdwr)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Write(fd, []byte("warm")); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := s.Reboot(target.comp); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
			})
		})
	}
}

// BenchmarkFig7Applications measures one application operation per
// iteration (Fig. 7): a SQLite insert, an Nginx GET, a Redis SET, an
// Echo round trip.
func BenchmarkFig7Applications(b *testing.B) {
	for _, cfg := range benchConfigs {
		b.Run(cfg.name+"/sqlite_insert", func(b *testing.B) {
			runBench(b, cfg.core(), func(s *vampos.Sys) {
				db := sqlite.New()
				if err := s.StartApp(db); err != nil {
					b.Fatal(err)
				}
				if _, err := db.Exec(s, "CREATE TABLE t (k, v)"); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := db.Exec(s, fmt.Sprintf("INSERT INTO t VALUES ('k%d', 'x')", i)); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
			})
		})
		b.Run(cfg.name+"/nginx_get", func(b *testing.B) {
			runBench(b, cfg.core(), func(s *vampos.Sys) {
				web := nginx.New()
				if err := s.StartApp(web); err != nil {
					b.Fatal(err)
				}
				benchOverConn(b, s, nginx.DefaultPort, func(th *sched.Thread, send func([]byte) error, recvLine func() ([]byte, error), recvN func(int) ([]byte, error)) error {
					if err := send([]byte("GET /index.html HTTP/1.1\r\nHost: g\r\n\r\n")); err != nil {
						return err
					}
					for {
						line, err := recvLine()
						if err != nil {
							return err
						}
						if strings.TrimRight(string(line), "\r\n") == "" {
							break
						}
					}
					_, err := recvN(180)
					return err
				})
			})
		})
		b.Run(cfg.name+"/redis_set", func(b *testing.B) {
			runBench(b, cfg.core(), func(s *vampos.Sys) {
				kv := redis.New()
				if err := s.StartApp(kv); err != nil {
					b.Fatal(err)
				}
				benchOverConn(b, s, redis.DefaultPort, func(th *sched.Thread, send func([]byte) error, recvLine func() ([]byte, error), recvN func(int) ([]byte, error)) error {
					if err := send([]byte("SET k val\n")); err != nil {
						return err
					}
					_, err := recvLine()
					return err
				})
			})
		})
		b.Run(cfg.name+"/echo_roundtrip", func(b *testing.B) {
			runBench(b, cfg.core(), func(s *vampos.Sys) {
				e := echo.New()
				if err := s.StartApp(e); err != nil {
					b.Fatal(err)
				}
				payload := []byte(strings.Repeat("e", 159))
				benchOverConn(b, s, echo.DefaultPort, func(th *sched.Thread, send func([]byte) error, recvLine func() ([]byte, error), recvN func(int) ([]byte, error)) error {
					if err := send(payload); err != nil {
						return err
					}
					_, err := recvN(len(payload))
					return err
				})
			})
		})
	}
}

// benchOverConn runs b.N iterations of op over one peer connection on a
// host thread, timing only the operation loop.
func benchOverConn(b *testing.B, s *vampos.Sys, port int,
	op func(th *sched.Thread, send func([]byte) error, recvLine func() ([]byte, error), recvN func(int) ([]byte, error)) error) {
	b.Helper()
	peer := s.NewPeer()
	done := false
	var err error
	s.GoHost("bench/client", func(th *sched.Thread) {
		defer func() { done = true }()
		conn, derr := peer.Dial(th, uint16(port), 5*time.Second)
		if derr != nil {
			err = derr
			return
		}
		send := func(p []byte) error { return conn.Send(th, p) }
		recvLine := func() ([]byte, error) { return conn.RecvLine(th, 5*time.Second) }
		recvN := func(n int) ([]byte, error) { return conn.RecvExactly(th, n, 5*time.Second) }
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if oerr := op(th, send, recvLine, recvN); oerr != nil {
				err = oerr
				return
			}
		}
		b.StopTimer()
		conn.Close(th)
	})
	for !done {
		s.Sleep(time.Millisecond)
	}
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTable4ThresholdSweep measures an insert under the three
// log-shrink thresholds of Table IV.
func BenchmarkTable4ThresholdSweep(b *testing.B) {
	for _, th := range []int{20, 100, 1000} {
		b.Run(fmt.Sprintf("threshold-%d", th), func(b *testing.B) {
			cc := vampos.DaSConfig()
			cc.LogShrinkThreshold = th
			runBench(b, cc, func(s *vampos.Sys) {
				db := sqlite.New()
				if err := s.StartApp(db); err != nil {
					b.Fatal(err)
				}
				if _, err := db.Exec(s, "CREATE TABLE t (k, v)"); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := db.Exec(s, fmt.Sprintf("INSERT INTO t VALUES ('k%d', 'x')", i)); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
			})
		})
	}
}

// BenchmarkTable5RejuvenationUnderLoad measures one rolling component
// rejuvenation per iteration while an echo client stays connected — the
// zero-lost-requests property of Table V is asserted, not just timed.
func BenchmarkTable5RejuvenationUnderLoad(b *testing.B) {
	runBench(b, vampos.DaSConfig(), func(s *vampos.Sys) {
		e := echo.New()
		if err := s.StartApp(e); err != nil {
			b.Fatal(err)
		}
		peer := s.NewPeer()
		stop := false
		failures := 0
		clientDone := false
		s.GoHost("bench/siege", func(th *sched.Thread) {
			defer func() { clientDone = true }()
			conn, err := peer.Dial(th, echo.DefaultPort, 5*time.Second)
			if err != nil {
				failures++
				return
			}
			for !stop {
				if err := conn.Send(th, []byte("req")); err != nil {
					failures++
					continue
				}
				if _, err := conn.RecvExactly(th, 3, 5*time.Second); err != nil {
					failures++
					continue
				}
				th.Sleep(200 * time.Microsecond)
			}
			conn.Close(th)
		})
		targets := []string{"vfs", "lwip", "9pfs", "process"}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Reboot(targets[i%len(targets)]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		stop = true
		for !clientDone {
			s.Sleep(time.Millisecond)
		}
		if failures != 0 {
			b.Fatalf("%d requests failed across %d rejuvenations", failures, b.N)
		}
	})
}

// BenchmarkFig8FailureRecovery measures one injected-9PFS-crash recovery
// per iteration on a warm Redis (the Fig. 8 scenario's VampOS side).
func BenchmarkFig8FailureRecovery(b *testing.B) {
	runBench(b, vampos.DaSConfig(), func(s *vampos.Sys) {
		kv := redis.New()
		if err := s.StartApp(kv); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if resp := kv.Execute(s, fmt.Sprintf("SET warm%d v", i)); !strings.HasPrefix(resp, "+OK") {
				b.Fatalf("warm: %s", resp)
			}
		}
		rt := s.Instance().Runtime()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := rt.ArmFault("9pfs", "uk_9pfs_write", vampos.FaultCrash); err != nil {
				b.Fatal(err)
			}
			if resp := kv.Execute(s, "SET trigger x"); !strings.HasPrefix(resp, "+OK") {
				b.Fatalf("recovery SET failed: %s", resp)
			}
		}
		b.StopTimer()
		if int(rt.Stats().Failures) != b.N {
			b.Fatalf("failures = %d, want %d", rt.Stats().Failures, b.N)
		}
	})
}

// BenchmarkSuiteSmoke runs the full internal/bench suite once at tiny
// scale, so `go test -bench .` exercises every experiment end to end.
func BenchmarkSuiteSmoke(b *testing.B) {
	scale := bench.DefaultScale()
	scale.SyscallTrials = 5
	scale.RebootTrials = 2
	scale.RebootWarmGETs = 20
	scale.SQLiteInserts = 60
	scale.NginxRequests = 60
	scale.NginxConns = 3
	scale.RedisSets = 60
	scale.EchoMessages = 60
	scale.SiegeClients = 3
	scale.SiegeRequests = 6
	scale.RejuvInterval = 500 * time.Millisecond
	scale.Fig8WarmKeys = 100
	scale.Fig8Duration = 6 * time.Second
	scale.Fig8GETRate = 40
	scale.Fig8InjectAt = 2 * time.Second
	for i := 0; i < b.N; i++ {
		suite := &bench.Suite{Scale: scale}
		if err := suite.Run("all", io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
